//! Index-based generational arena for in-flight instruction state.
//!
//! The per-cycle hot path resolves instruction ids many times per cycle
//! (issue, writeback, commit, squash walks, LSQ scans). A `HashMap<Uid,
//! DynInst>` pays hashing and probing on every access and allocates on
//! growth; the arena replaces it with a direct `Vec` index plus a
//! generation check, so a lookup is one bounds check and one compare.
//!
//! A [`Uid`] is the pair (age sequence, slot index). The sequence is
//! globally monotonic — allocation order equals program order within a
//! threadlet, which the engine relies on for age comparisons (LSQ scans,
//! squash predicates, oldest-first issue). The sequence also doubles as
//! the slot's generation tag: each slot remembers the sequence of its
//! current occupant, so a stale `Uid` whose slot was recycled fails the
//! tag compare and resolves to `None` exactly like a missing map key.

use crate::dyninst::DynInst;
use std::fmt;

/// Identity of a dynamic instruction: a globally monotonic age sequence
/// plus the arena slot holding its state. Ordering, equality, and hashing
/// follow the sequence (slot is a tie-breaker that never fires: sequences
/// are unique).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct Uid {
    seq: u64,
    slot: u32,
}

impl Uid {
    /// Placeholder carried by a `DynInst` before arena insertion assigns
    /// its real identity.
    pub(crate) const INVALID: Uid = Uid { seq: 0, slot: u32::MAX };

    /// The age sequence (program order within a threadlet; trace and
    /// artifact output renders this number).
    pub(crate) fn seq(self) -> u64 {
        self.seq
    }
}

impl fmt::Debug for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.seq)
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.seq)
    }
}

#[derive(Debug)]
struct Slot {
    /// Sequence of the current occupant; 0 = free.
    seq: u64,
    d: Option<DynInst>,
}

/// The instruction slab: a free-list arena of [`DynInst`]s addressed by
/// [`Uid`]. Capacity is bounded by the in-flight window (ROB size), so
/// after warm-up no allocation happens on the hot path.
#[derive(Debug, Default)]
pub(crate) struct InstArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    next_seq: u64,
    live: usize,
    high_water: usize,
}

impl InstArena {
    pub(crate) fn new() -> InstArena {
        InstArena { slots: Vec::new(), free: Vec::new(), next_seq: 1, live: 0, high_water: 0 }
    }

    /// Number of live instructions.
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Peak simultaneous live instructions over the arena's lifetime (the
    /// in-flight window the slab actually had to hold).
    pub(crate) fn high_water(&self) -> usize {
        self.high_water
    }

    /// Inserts `d`, assigning and returning its identity (also written to
    /// `d.uid`). Reuses a freed slot when available.
    pub(crate) fn insert(&mut self, mut d: DynInst) -> Uid {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot { seq: 0, d: None });
                (self.slots.len() - 1) as u32
            }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let uid = Uid { seq, slot };
        d.uid = uid;
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.seq == 0 && s.d.is_none(), "free slot is empty");
        s.seq = seq;
        s.d = Some(d);
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        uid
    }

    /// Resolves `uid`, or `None` if it was removed (possibly recycled).
    #[inline]
    pub(crate) fn get(&self, uid: Uid) -> Option<&DynInst> {
        match self.slots.get(uid.slot as usize) {
            Some(s) if s.seq == uid.seq => s.d.as_ref(),
            _ => None,
        }
    }

    /// Mutable [`InstArena::get`].
    #[inline]
    pub(crate) fn get_mut(&mut self, uid: Uid) -> Option<&mut DynInst> {
        match self.slots.get_mut(uid.slot as usize) {
            Some(s) if s.seq == uid.seq => s.d.as_mut(),
            _ => None,
        }
    }

    /// Whether `uid` is live.
    #[inline]
    pub(crate) fn contains(&self, uid: Uid) -> bool {
        matches!(self.slots.get(uid.slot as usize), Some(s) if s.seq == uid.seq)
    }

    /// Removes and returns `uid`'s instruction, freeing its slot for
    /// reuse. Stale uids return `None`.
    pub(crate) fn remove(&mut self, uid: Uid) -> Option<DynInst> {
        match self.slots.get_mut(uid.slot as usize) {
            Some(s) if s.seq == uid.seq => {
                s.seq = 0;
                let d = s.d.take();
                debug_assert!(d.is_some(), "occupied slot holds an instruction");
                self.free.push(uid.slot);
                self.live -= 1;
                d
            }
            _ => None,
        }
    }
}

impl std::ops::Index<Uid> for InstArena {
    type Output = DynInst;

    #[inline]
    fn index(&self, uid: Uid) -> &DynInst {
        self.get(uid).unwrap_or_else(|| panic!("stale or removed uid {uid:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dyninst::FetchedInst;
    use std::collections::HashMap;

    fn inst(pc: usize) -> DynInst {
        let f = FetchedInst {
            pc,
            inst: lf_isa::Inst::Nop,
            bp: None,
            pred_next: pc + 1,
            pack_factor: 1,
            pack_predictions: Vec::new(),
            suppressed: false,
        };
        DynInst::new(0, &f)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = InstArena::new();
        let u1 = a.insert(inst(10));
        let u2 = a.insert(inst(20));
        assert_eq!(a.len(), 2);
        assert_eq!(a[u1].pc, 10);
        assert_eq!(a[u2].pc, 20);
        assert_eq!(a[u1].uid, u1, "insert writes the identity back");
        let d = a.remove(u1).unwrap();
        assert_eq!(d.pc, 10);
        assert!(!a.contains(u1));
        assert!(a.get(u1).is_none());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn sequences_are_monotonic_and_order_uids() {
        let mut a = InstArena::new();
        let u1 = a.insert(inst(0));
        let u2 = a.insert(inst(1));
        a.remove(u1);
        // u3 reuses u1's slot but is younger than both predecessors.
        let u3 = a.insert(inst(2));
        assert!(u1 < u2 && u2 < u3);
        assert_eq!(u3.seq(), 3);
    }

    #[test]
    fn stale_uid_to_recycled_slot_misses() {
        let mut a = InstArena::new();
        let u1 = a.insert(inst(10));
        a.remove(u1);
        let u2 = a.insert(inst(20));
        // Same slot, different generation: the stale uid must not alias.
        assert!(a.get(u1).is_none());
        assert!(!a.contains(u1));
        assert!(a.remove(u1).is_none());
        assert_eq!(a[u2].pc, 20);
    }

    #[test]
    fn double_remove_is_none() {
        let mut a = InstArena::new();
        let u = a.insert(inst(1));
        assert!(a.remove(u).is_some());
        assert!(a.remove(u).is_none());
        assert_eq!(a.len(), 0);
    }

    /// Property test pinning the arena to `HashMap` slab semantics: a
    /// random insert/lookup/remove schedule must observe identical
    /// results from both (including stale-uid misses after removal).
    #[test]
    fn randomized_against_hashmap_slab() {
        let mut seed: u64 = 0x5EED_CAFE;
        let mut rnd = move |m: u64| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) % m
        };
        for _trial in 0..50 {
            let mut arena = InstArena::new();
            let mut model: HashMap<u64, usize> = HashMap::new(); // seq -> pc
            let mut issued: Vec<Uid> = Vec::new(); // every uid ever issued
            for step in 0..400 {
                match rnd(3) {
                    0 => {
                        let pc = step as usize;
                        let uid = arena.insert(inst(pc));
                        assert!(model.insert(uid.seq(), pc).is_none(), "sequences unique");
                        issued.push(uid);
                    }
                    1 if !issued.is_empty() => {
                        let uid = issued[rnd(issued.len() as u64) as usize];
                        assert_eq!(
                            arena.get(uid).map(|d| d.pc),
                            model.get(&uid.seq()).copied(),
                            "lookup diverged from HashMap slab"
                        );
                        assert_eq!(arena.contains(uid), model.contains_key(&uid.seq()));
                    }
                    _ if !issued.is_empty() => {
                        let uid = issued[rnd(issued.len() as u64) as usize];
                        assert_eq!(
                            arena.remove(uid).map(|d| d.pc),
                            model.remove(&uid.seq()),
                            "remove diverged from HashMap slab"
                        );
                    }
                    _ => {}
                }
                assert_eq!(arena.len(), model.len());
            }
        }
    }
}
