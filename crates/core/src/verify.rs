//! Cycle-level invariant checking and lockstep commit-boundary recording
//! (compiled only with the `verify` cargo feature).
//!
//! The engine calls into [`VerifyState`] from its stage methods to check
//! microarchitectural invariants that must hold on every cycle regardless
//! of program or configuration:
//!
//! - **occupancy conservation** — the shared `rob/lq/sq` occupancy counters
//!   equal the sum of the per-threadlet queue lengths;
//! - **SSB valid-mask ⊆ slice ownership** — valid granule bits never exceed
//!   the line's granule count, and only slices owned by *active* contexts
//!   (never the architectural one, whose stores bypass the SSB) hold data;
//! - **conflict-set ⊇ actual accesses** — immediately after a store drains
//!   (or a load executes), every touched granule is present in the
//!   threadlet's write (read) set;
//! - **epoch-order commit** — threadlets retire in strictly increasing
//!   epoch order, and the active list is epoch-sorted every cycle;
//! - **accounting conservation** — cycle-accounting buckets sum to
//!   `cycles × commit_width` at the end of a run.
//!
//! Violations are recorded, not panicked, so a fuzzer can shrink the
//! triggering program. With [`VerifyState::record_boundaries`] enabled the
//! engine additionally logs a [`CommitBoundary`] at every threadlet
//! retirement, which `lf-verify` replays against the golden emulator
//! (lockstep differential checking: state is compared at every boundary,
//! not just end-of-run).

/// Architectural snapshot taken at one threadlet commit (retirement)
/// boundary, for lockstep replay against the golden emulator.
#[derive(Debug, Clone)]
pub struct CommitBoundary {
    /// Epoch number of the retiring threadlet.
    pub epoch: u64,
    /// Program-order instruction count through the retiring threadlet's
    /// last committed instruction. The emulator stepped to exactly this
    /// count must hold `regs`.
    pub insts_before: u64,
    /// The retiring threadlet's final architectural register values.
    pub regs: Vec<u64>,
    /// Instruction count after the promoted successor's speculatively
    /// committed epoch is credited. The emulator stepped to this count must
    /// see `mem_checksum_after`.
    pub insts_after: u64,
    /// Architectural memory checksum after the successor's SSB slice was
    /// applied atomically.
    pub mem_checksum_after: u64,
}

/// Cap on retained violation messages (the count keeps incrementing).
const MAX_VIOLATIONS: usize = 16;

/// Invariant-violation log and lockstep recording state, owned by the core.
#[derive(Debug, Clone, Default)]
pub struct VerifyState {
    /// When set, every threadlet retirement records a [`CommitBoundary`]
    /// (includes a full memory checksum per boundary; off by default).
    pub record_boundaries: bool,
    /// Recorded boundaries, oldest first.
    pub boundaries: Vec<CommitBoundary>,
    violations: Vec<String>,
    total_violations: u64,
    pub(crate) last_retired_epoch: Option<u64>,
    /// Number of spawned successors promoted to architectural so far. Each
    /// successor starts fetching *at* its region's reattach pc and commits
    /// that hint once as a no-op before its program-order slice, so
    /// `stats.committed_insts` runs ahead of the golden emulator's
    /// program-order count by exactly this number. Boundary recording
    /// subtracts it to report emulator-comparable counts.
    pub(crate) promoted_spawns: u64,
}

/// Snapshot captured at the top of `retire_arch`, completed after the
/// successor's slice applies.
#[derive(Debug)]
pub(crate) struct BoundaryPre {
    pub(crate) epoch: u64,
    pub(crate) insts_before: u64,
    pub(crate) regs: Vec<u64>,
}

impl VerifyState {
    /// Records an invariant violation (retains the first few verbatim).
    pub(crate) fn violation(&mut self, msg: String) {
        self.total_violations += 1;
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(msg);
        }
    }

    /// The retained violation messages (empty when all invariants held).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Total violations observed, including ones past the retention cap.
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }
}
