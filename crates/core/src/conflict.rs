//! The conflict detector (paper §4.2, Algorithm 1).
//!
//! Maintains per-threadlet read and write sets at granule granularity and
//! detects true read-after-write dependences between threadlets where the
//! read was serviced *before* the write. All other hazard classes are
//! eliminated by the SSB's multi-versioning and in-order threadlet commit.
//!
//! Sets are exact ([`GranuleSet`]s — sorted vectors with the same
//! semantics as a `HashSet<u64>`), modeling the paper's idealized Bloom
//! filters ("No false positives modeled"; Table 1).

/// An exact set of granule ids, stored as a sorted, deduplicated vector.
///
/// The conflict detector queries these sets on every speculative memory
/// access; per-threadlet footprints are bounded by the SSB slice (a few
/// hundred granules), so a binary-searched vector beats a `HashSet` on
/// both lookup cost (no hashing, contiguous probes) and iteration
/// (deterministic order, no buckets). Membership and insertion are
/// `O(log n)` searches; insertion shifts the tail, which is cheap at
/// these sizes.
#[derive(Debug, Clone, Default)]
pub struct GranuleSet {
    sorted: Vec<u64>,
}

impl GranuleSet {
    /// Creates an empty set.
    pub fn new() -> GranuleSet {
        GranuleSet::default()
    }

    /// Whether `g` is in the set.
    #[inline]
    pub fn contains(&self, g: u64) -> bool {
        self.sorted.binary_search(&g).is_ok()
    }

    /// Inserts `g`; returns `true` if it was absent.
    pub fn insert(&mut self, g: u64) -> bool {
        match self.sorted.binary_search(&g) {
            Ok(_) => false,
            Err(i) => {
                self.sorted.insert(i, g);
                true
            }
        }
    }

    /// Removes all elements (keeps the allocation).
    pub fn clear(&mut self) {
        self.sorted.clear();
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// Per-context read/write sets plus the Algorithm 1 checking logic.
#[derive(Debug, Clone)]
pub struct ConflictDetector {
    rd: Vec<GranuleSet>,
    wr: Vec<GranuleSet>,
    probes: u64,
    /// Fault injection for verify builds: drop the first granule from every
    /// write-set insertion (squash checks keep the full granule list). The
    /// lf-verify harness enables this to prove its invariant checks catch
    /// detector bugs.
    #[cfg(feature = "verify")]
    inject_drop_write_granule: bool,
}

impl ConflictDetector {
    /// Creates a detector for `contexts` threadlet slots.
    pub fn new(contexts: usize) -> ConflictDetector {
        ConflictDetector {
            rd: vec![GranuleSet::new(); contexts],
            wr: vec![GranuleSet::new(); contexts],
            probes: 0,
            #[cfg(feature = "verify")]
            inject_drop_write_granule: false,
        }
    }

    /// Arms the drop-one-write-granule fault injection (verify builds).
    #[cfg(feature = "verify")]
    pub fn set_inject_drop_write_granule(&mut self, on: bool) {
        self.inject_drop_write_granule = on;
    }

    /// Clears both sets of a slot (threadlet squash or recycle).
    pub fn clear(&mut self, slot: usize) {
        self.rd[slot].clear();
        self.wr[slot].clear();
    }

    /// Algorithm 1, `SpeculativeRead`: records that threadlet `slot` read
    /// `granules`. Granules already in the slot's own write set were
    /// produced by this threadlet's prior writes and are excluded.
    pub fn on_read(&mut self, slot: usize, granules: &[u64]) {
        self.probes += granules.len() as u64;
        for &g in granules {
            if !self.wr[slot].contains(g) {
                self.rd[slot].insert(g);
            }
        }
    }

    /// Algorithm 1, `Write`: records a write of `granules` by `slot` and
    /// checks younger threadlets (`younger`, ordered old→young) for reads
    /// that should have observed it. Returns the slot of the *oldest*
    /// conflicting younger threadlet, which must be squashed (along with
    /// everything younger).
    pub fn on_write(&mut self, slot: usize, granules: &[u64], younger: &[usize]) -> Option<usize> {
        #[cfg(feature = "verify")]
        let recorded = if self.inject_drop_write_granule && !granules.is_empty() {
            &granules[1..]
        } else {
            granules
        };
        #[cfg(not(feature = "verify"))]
        let recorded = granules;
        for &g in recorded {
            self.wr[slot].insert(g);
        }

        // The forwarding frontier is the handful of granules this write
        // touches (a memory access spans at most a few), so a plain vector
        // suffices.
        let mut fwd: Vec<u64> = granules.to_vec();
        for &t in younger {
            if fwd.is_empty() {
                break;
            }
            let mut conflict = false;
            for &g in &fwd {
                self.probes += 1;
                if self.rd[t].contains(g) {
                    conflict = true;
                    break;
                }
            }
            if conflict {
                // t observed a stale value: squash t (and younger).
                return Some(t);
            }
            // Granules t has overwritten forward from t, not from us: any
            // later reader should observe t's write, and the check started
            // by t's own write covers it.
            self.probes += fwd.len() as u64;
            fwd.retain(|&g| !self.wr[t].contains(g));
        }
        None
    }

    /// Set-membership tests performed by the Algorithm 1 hot path
    /// (diagnostics-only accessors excluded).
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Whether `slot`'s read set contains `granule` (tests/diagnostics).
    pub fn has_read(&self, slot: usize, granule: u64) -> bool {
        self.rd[slot].contains(granule)
    }

    /// Whether `slot`'s write set contains `granule` (tests/diagnostics).
    pub fn has_written(&self, slot: usize, granule: u64) -> bool {
        self.wr[slot].contains(granule)
    }

    /// Read/write set sizes of a slot.
    pub fn set_sizes(&self, slot: usize) -> (usize, usize) {
        (self.rd[slot].len(), self.wr[slot].len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Property test pinning [`GranuleSet`] to `HashSet<u64>` semantics
    /// under a random insert/contains/clear schedule.
    #[test]
    fn granule_set_matches_hashset() {
        let mut seed: u64 = 0x6A_5E75;
        let mut rnd = move |m: u64| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) % m
        };
        for _trial in 0..50 {
            let mut gs = GranuleSet::new();
            let mut model: HashSet<u64> = HashSet::new();
            for _ in 0..300 {
                let g = rnd(32);
                match rnd(8) {
                    0 => {
                        gs.clear();
                        model.clear();
                    }
                    1..=4 => {
                        assert_eq!(gs.insert(g), model.insert(g), "insert diverged on {g}");
                    }
                    _ => {
                        assert_eq!(gs.contains(g), model.contains(&g), "contains diverged on {g}");
                    }
                }
                assert_eq!(gs.len(), model.len());
                assert_eq!(gs.is_empty(), model.is_empty());
            }
        }
    }

    #[test]
    fn raw_violation_squashes_reader() {
        let mut cd = ConflictDetector::new(3);
        // Threadlet 1 (younger) reads granule 5 before threadlet 0 writes it.
        cd.on_read(1, &[5]);
        assert_eq!(cd.on_write(0, &[5], &[1, 2]), Some(1));
    }

    #[test]
    fn correctly_ordered_forwarding_no_squash() {
        let mut cd = ConflictDetector::new(2);
        // Write drains first; the later read is served by the SSB and the
        // read-set update happens after — no conflict.
        assert_eq!(cd.on_write(0, &[5], &[1]), None);
        cd.on_read(1, &[5]);
        // A second write to the same granule by the older threadlet WOULD
        // now conflict (the reader saw the first value, not this one).
        assert_eq!(cd.on_write(0, &[5], &[1]), Some(1));
    }

    #[test]
    fn own_prior_write_masks_read() {
        let mut cd = ConflictDetector::new(2);
        // Threadlet 1 writes granule 7 then reads it: the read is satisfied
        // in-threadlet and must not enter the read set.
        assert_eq!(cd.on_write(1, &[7], &[]), None);
        cd.on_read(1, &[7]);
        assert!(!cd.has_read(1, 7));
        // So an older write to 7 does not squash threadlet 1 on account of
        // that read...
        assert_eq!(cd.on_write(0, &[7], &[1]), None);
    }

    #[test]
    fn intervening_write_stops_forwarding() {
        // W0 by threadlet 0; threadlet 1 wrote the same granule; threadlet 2
        // read it. Reader 2 should observe threadlet 1's value, so W0 must
        // not squash threadlet 2 (Algorithm 1 line 13).
        let mut cd = ConflictDetector::new(3);
        assert_eq!(cd.on_write(1, &[9], &[2]), None);
        cd.on_read(2, &[9]);
        assert_eq!(cd.on_write(0, &[9], &[1, 2]), None, "granule forwarded from 1, not 0");
        // But if threadlet 1 writes granule 9 again, IT conflicts with 2.
        assert_eq!(cd.on_write(1, &[9], &[2]), Some(2));
    }

    #[test]
    fn oldest_conflicting_younger_reported() {
        let mut cd = ConflictDetector::new(4);
        cd.on_read(2, &[1]);
        cd.on_read(3, &[1]);
        assert_eq!(cd.on_write(0, &[1], &[1, 2, 3]), Some(2));
    }

    #[test]
    fn disjoint_granules_never_conflict() {
        let mut cd = ConflictDetector::new(2);
        cd.on_read(1, &[100, 101]);
        assert_eq!(cd.on_write(0, &[102, 103], &[1]), None);
    }

    #[test]
    fn multi_granule_write_partial_overlap() {
        let mut cd = ConflictDetector::new(2);
        cd.on_read(1, &[101]);
        assert_eq!(cd.on_write(0, &[100, 101, 102], &[1]), Some(1));
    }

    #[test]
    fn clear_resets_slot() {
        let mut cd = ConflictDetector::new(2);
        cd.on_read(1, &[5]);
        cd.clear(1);
        assert_eq!(cd.on_write(0, &[5], &[1]), None);
        assert_eq!(cd.set_sizes(1), (0, 0));
    }

    /// Randomized check against a brute-force oracle: generate an access
    /// trace and verify that `on_write` flags exactly the cases where a
    /// younger threadlet read a granule (not masked by its own or an
    /// intervening threadlet's write) before the write drained.
    #[test]
    fn randomized_against_oracle() {
        // Simple deterministic LCG for reproducibility.
        let mut seed: u64 = 0xDEAD_BEEF;
        let mut rnd = move |m: u64| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) % m
        };
        for _trial in 0..200 {
            let contexts = 4;
            let mut cd = ConflictDetector::new(contexts);
            // Oracle state mirrors rd/wr sets.
            let mut ord: Vec<HashSet<u64>> = vec![HashSet::new(); contexts];
            let mut owr: Vec<HashSet<u64>> = vec![HashSet::new(); contexts];
            for _ in 0..40 {
                let slot = (rnd(contexts as u64)) as usize;
                let g = rnd(6);
                if rnd(2) == 0 {
                    cd.on_read(slot, &[g]);
                    if !owr[slot].contains(&g) {
                        ord[slot].insert(g);
                    }
                } else {
                    let younger: Vec<usize> = (slot + 1..contexts).collect();
                    let got = cd.on_write(slot, &[g], &younger);
                    // Oracle: walk younger threadlets oldest-first.
                    let mut expect = None;
                    for &t in &younger {
                        if ord[t].contains(&g) {
                            expect = Some(t);
                            break;
                        }
                        if owr[t].contains(&g) {
                            break; // forwarded from t onwards
                        }
                    }
                    owr[slot].insert(g);
                    assert_eq!(got, expect, "trace diverged from oracle");
                    if let Some(v) = got {
                        for t in v..contexts {
                            cd.clear(t);
                            ord[t].clear();
                            owr[t].clear();
                        }
                    }
                }
            }
        }
    }
}
