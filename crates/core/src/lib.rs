//! # loopfrog — In-Core Hint-Based Loop Parallelization
//!
//! A from-scratch reproduction of *LoopFrog: In-Core Hint-Based Loop
//! Parallelization* (Erdős et al., MICRO 2025): a cycle-level, 8-wide
//! out-of-order core in which compiler-inserted `detach`/`reattach`/`sync`
//! hints let the microarchitecture run future loop iterations as
//! speculative *threadlets*, leapfrogging the instruction window.
//!
//! The crate provides:
//!
//! - [`LoopFrogCore`] / [`simulate`]: the pipeline (paper §4, Figure 3) —
//!   with [`LoopFrogConfig::baseline`] it is also the paper's baseline core
//!   (hints as NOPs);
//! - [`ssb::Ssb`]: the Speculative State Buffer (§4.1) with granule-level
//!   multi-versioning, victim buffer, and atomic threadlet commit;
//! - [`conflict::ConflictDetector`]: Algorithm 1's read/write-set checks;
//! - [`packing::PackingPredictors`]: iteration packing (§4.3) — epoch-size
//!   EMA, induction-variable detection, and strided value prediction;
//! - [`SimStats`] / [`SimResult`]: the metrics behind the paper's figures.
//!
//! Sequential semantics are strictly preserved: any run's final
//! architectural state checksum equals the golden [`lf_isa::Emulator`]'s.
//!
//! # Examples
//!
//! Compare the baseline with LoopFrog on a hinted program:
//!
//! ```
//! use lf_isa::{Memory, ProgramBuilder, reg, AluOp, BranchCond, MemSize};
//! use loopfrog::{simulate, LoopFrogConfig};
//!
//! // for i in 0..64 { a[i] = a[i] * 3 }  — hinted for LoopFrog.
//! let mut b = ProgramBuilder::new();
//! let cont = b.label("cont");
//! let head = b.label("head");
//! let exit = b.label("exit");
//! b.li(reg::x(1), 0);       // i * 8
//! b.li(reg::x(2), 64 * 8);  // bound
//! b.bind(head);
//! b.detach(cont);
//! b.load(reg::x(3), reg::x(1), 0x100, MemSize::B8);
//! b.alui(AluOp::Mul, reg::x(3), reg::x(3), 3);
//! b.store(reg::x(3), reg::x(1), 0x100, MemSize::B8);
//! b.reattach(cont);
//! b.bind(cont);
//! b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
//! b.branch(BranchCond::Lt, reg::x(1), reg::x(2), head);
//! b.sync(cont);
//! b.halt();
//! let program = b.build()?;
//!
//! let base = simulate(&program, Memory::new(4096), LoopFrogConfig::baseline())?;
//! let lf = simulate(&program, Memory::new(4096), LoopFrogConfig::default())?;
//! assert_eq!(base.checksum, lf.checksum, "sequential semantics preserved");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod arena;
pub mod bloom;
pub mod config;
pub mod conflict;
pub mod deselect;
mod dyninst;
mod engine;
pub mod packing;
pub mod profiler;
pub mod ssb;
pub mod stats;
pub mod telemetry;
mod threadlet;
pub mod trace;
#[cfg(feature = "verify")]
pub mod verify;
mod wheel;

pub use config::{LoopFrogConfig, PackingConfig, SsbConfig};
pub use deselect::DeselectConfig;
pub use engine::{simulate, LoopFrogCore, SimError};
pub use profiler::{ProfileReport, StageProfile};
pub use stats::{SimResult, SimStats, SimStop};
pub use telemetry::{CycleAccounting, CycleBucket, IntervalSample, TelemetryConfig};
pub use trace::{
    CountingTracer, KonataTracer, SquashReason, TextTracer, TraceEvent, TraceFilter, TraceKind,
    TraceMux, Tracer,
};
