//! Engine self-profiler: sampled wall-clock accounting per pipeline stage.
//!
//! Answers "where does the *simulator's* time go?" (as opposed to the
//! telemetry layer, which accounts *simulated* cycles). Reading the clock
//! around all six stage calls of every tick would double the cost of short
//! stages, so the profiler samples: every [`SAMPLE_PERIOD`]-th tick is
//! timed end to end, the rest run untouched. Stage latencies are strongly
//! periodic in this engine (the same loop kernels dominate each run), so a
//! 1-in-64 systematic sample converges on the true shares within a few
//! thousand cycles while keeping overhead under a percent.
//!
//! Enable with [`crate::LoopFrogCore::enable_profiler`] — deliberately a
//! core method and not a [`crate::LoopFrogConfig`] field, so profiled and
//! unprofiled runs share a config fingerprint and the harness's
//! deduplication, caching, and determinism guarantees are untouched (the
//! report travels outside the deterministic statistics).

use lf_stats::Json;

/// One tick in every `SAMPLE_PERIOD` is wall-clock timed. A power of two,
/// so the per-tick sampling decision is a mask test.
pub const SAMPLE_PERIOD: u64 = 64;

/// The pipeline stages timed by the profiler, in tick order. Squash and
/// coherence work is attributed to the stage that triggers it (commit for
/// conflict/sync/packing squashes and store drains, writeback for
/// wrong-path recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stage {
    /// Commit (including store drains, squash cascades, coherence).
    Commit = 0,
    /// Deferred threadlet spawn service.
    Spawn = 1,
    /// Writeback (completion drain, branch resolution, recovery).
    Writeback = 2,
    /// Issue/execute (including SSB/L1D accesses).
    Issue = 3,
    /// Decode/rename (including detach capture).
    Rename = 4,
    /// Fetch (including I-cache and hint interpretation).
    Fetch = 5,
}

const STAGE_COUNT: usize = 6;
const STAGE_NAMES: [&str; STAGE_COUNT] =
    ["commit", "spawn_service", "writeback", "issue", "rename", "fetch"];

/// Sampled wall-clock time of one pipeline stage.
#[derive(Debug, Clone)]
pub struct StageProfile {
    /// Stage name (`commit`, `spawn_service`, `writeback`, `issue`,
    /// `rename`, `fetch`).
    pub name: &'static str,
    /// Wall-clock nanoseconds accumulated over sampled ticks.
    pub sampled_ns: u64,
}

/// The self-profiler's result: per-stage wall-clock shares estimated from
/// sampled ticks. Shares are relative to the total sampled stage time;
/// extrapolate absolute cost with `sampled_ns * total_ticks /
/// sampled_ticks`.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Ticks that were wall-clock timed.
    pub sampled_ticks: u64,
    /// Total ticks simulated while the profiler was enabled.
    pub total_ticks: u64,
    /// Per-stage sampled totals, in tick order.
    pub stages: Vec<StageProfile>,
}

impl ProfileReport {
    /// Total sampled nanoseconds across all stages.
    pub fn sampled_total_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.sampled_ns).sum()
    }

    /// The fraction of sampled stage time spent in `name`, or 0.0 for an
    /// unknown stage or an empty profile.
    pub fn share(&self, name: &str) -> f64 {
        let total = self.sampled_total_ns();
        if total == 0 {
            return 0.0;
        }
        self.stages
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.sampled_ns as f64 / total as f64)
            .unwrap_or(0.0)
    }

    /// Renders the report as JSON (stage list plus sampling metadata).
    pub fn to_json(&self) -> Json {
        let total = self.sampled_total_ns();
        let mut stages = Vec::new();
        for s in &self.stages {
            let mut o = Json::obj();
            o.set("name", Json::Str(s.name.to_string()));
            o.set("sampled_ns", Json::Num(s.sampled_ns as f64));
            let share = if total == 0 { 0.0 } else { s.sampled_ns as f64 / total as f64 };
            o.set("share", Json::Num(share));
            stages.push(o);
        }
        let mut j = Json::obj();
        j.set("sample_period", Json::Num(SAMPLE_PERIOD as f64));
        j.set("sampled_ticks", Json::Num(self.sampled_ticks as f64));
        j.set("total_ticks", Json::Num(self.total_ticks as f64));
        j.set("sampled_total_ns", Json::Num(total as f64));
        j.set("stages", Json::Arr(stages));
        j
    }
}

/// Accumulates sampled per-stage durations while the core runs.
#[derive(Debug, Default)]
pub(crate) struct Profiler {
    stage_ns: [u64; STAGE_COUNT],
    sampled_ticks: u64,
}

impl Profiler {
    pub(crate) fn new() -> Profiler {
        Profiler::default()
    }

    /// Whether tick `cycle` is a sampled tick.
    #[inline]
    pub(crate) fn is_sample(cycle: u64) -> bool {
        cycle & (SAMPLE_PERIOD - 1) == 0
    }

    #[inline]
    pub(crate) fn record(&mut self, stage: Stage, ns: u64) {
        self.stage_ns[stage as usize] += ns;
    }

    #[inline]
    pub(crate) fn count_tick(&mut self) {
        self.sampled_ticks += 1;
    }

    pub(crate) fn report(&self, total_ticks: u64) -> ProfileReport {
        ProfileReport {
            sampled_ticks: self.sampled_ticks,
            total_ticks,
            stages: STAGE_NAMES
                .iter()
                .zip(self.stage_ns.iter())
                .map(|(&name, &sampled_ns)| StageProfile { name, sampled_ns })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_mask_matches_period() {
        assert!(Profiler::is_sample(0));
        assert!(!Profiler::is_sample(1));
        assert!(!Profiler::is_sample(SAMPLE_PERIOD - 1));
        assert!(Profiler::is_sample(SAMPLE_PERIOD));
        assert!(Profiler::is_sample(SAMPLE_PERIOD * 7));
    }

    #[test]
    fn report_shares_sum_to_one() {
        let mut p = Profiler::new();
        p.record(Stage::Commit, 300);
        p.record(Stage::Issue, 500);
        p.record(Stage::Fetch, 200);
        p.count_tick();
        let r = p.report(64);
        assert_eq!(r.sampled_ticks, 1);
        assert_eq!(r.total_ticks, 64);
        assert_eq!(r.sampled_total_ns(), 1000);
        assert!((r.share("issue") - 0.5).abs() < 1e-12);
        assert!((r.share("commit") - 0.3).abs() < 1e-12);
        assert_eq!(r.share("no_such_stage"), 0.0);
        let sum: f64 = STAGE_NAMES.iter().map(|n| r.share(n)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_has_zero_shares() {
        let r = Profiler::new().report(0);
        assert_eq!(r.share("commit"), 0.0);
        assert_eq!(r.sampled_total_ns(), 0);
    }

    #[test]
    fn json_shape() {
        let mut p = Profiler::new();
        p.record(Stage::Rename, 10);
        p.count_tick();
        let j = p.report(64).to_json();
        let s = j.to_string_pretty();
        assert!(s.contains("\"sample_period\""));
        assert!(s.contains("\"stages\""));
        assert!(s.contains("\"rename\""));
        assert!(s.contains("\"share\""));
    }
}
