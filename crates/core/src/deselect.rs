//! Dynamic loop deselection (paper §5.1).
//!
//! "Dynamic selection avoids unprofitable parallelization by ignoring hints
//! and treating them as NOPs. … unprofitable loops must be excluded by
//! either static or dynamic deselection, as they may lead to slowdown.
//! … [a solution] may be based on performance counters."
//!
//! This monitor watches each region's epochs at run time and suppresses a
//! region's hints once its observed behaviour predicts a loss: epochs that
//! keep squashing on conflicts, keep overflowing the SSB, or are too small
//! to pay the spawn overhead. Suppression is periodically reconsidered so
//! phase changes can re-enable a region.

use lf_isa::RegionId;
use std::collections::HashMap;

/// Per-region profitability counters.
#[derive(Debug, Clone, Default)]
struct RegionScore {
    /// Epochs spawned for this region.
    spawned: u64,
    /// Epochs squashed by memory conflicts.
    conflicts: u64,
    /// SSB overflow stalls attributed to this region.
    overflows: u64,
    /// Epochs retired successfully.
    retired: u64,
    /// Sum of committed instructions over retired epochs.
    retired_insts: u64,
    /// Region currently suppressed.
    suppressed: bool,
    /// Spawns observed while suppressed (drives periodic re-evaluation).
    observed_while_suppressed: u64,
}

/// Tunable thresholds for the dynamic deselector.
#[derive(Debug, Clone, PartialEq)]
pub struct DeselectConfig {
    /// Master enable (off reproduces the paper's headline configuration,
    /// which relies on static selection only).
    pub enabled: bool,
    /// Epochs to observe before judging a region.
    pub warmup_epochs: u64,
    /// Suppress when conflicts-per-retired-epoch exceeds this.
    pub max_conflict_rate: f64,
    /// Suppress when more than this fraction of spawned epochs hit an SSB
    /// overflow stall (each epoch reports at most one overflow event).
    pub max_overflow_rate: f64,
    /// Suppress when the mean retired epoch is smaller than this (too
    /// little work to pay the spawn overhead).
    pub min_epoch_insts: f64,
    /// Re-evaluate a suppressed region after this many ignored detaches.
    pub retry_after: u64,
}

impl Default for DeselectConfig {
    fn default() -> DeselectConfig {
        DeselectConfig {
            enabled: false,
            warmup_epochs: 8,
            // Conservative: only a real storm (conflicts well past one per
            // retired epoch) is suppressed — regions like the paper's
            // povray profit from failed speculation's prefetching.
            max_conflict_rate: 2.0,
            max_overflow_rate: 0.25,
            min_epoch_insts: 4.0,
            retry_after: 256,
        }
    }
}

/// Run-time region profitability monitor.
#[derive(Debug, Clone)]
pub struct Deselector {
    cfg: DeselectConfig,
    regions: HashMap<RegionId, RegionScore>,
}

impl Deselector {
    /// Creates a monitor.
    pub fn new(cfg: &DeselectConfig) -> Deselector {
        Deselector { cfg: cfg.clone(), regions: HashMap::new() }
    }

    /// Whether `region`'s hints should currently be treated as NOPs.
    pub fn is_suppressed(&self, region: RegionId) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        self.regions.get(&region).is_some_and(|s| s.suppressed)
    }

    /// Advances a suppressed region's retry clock by one *committed*
    /// detach (wrong-path fetches never commit, so pacing tracks real
    /// architectural progress); after `retry_after` ignored detaches the
    /// region gets a clean slate.
    pub fn note_suppressed_detach(&mut self, region: RegionId) {
        if !self.cfg.enabled {
            return;
        }
        let retry_after = self.cfg.retry_after;
        let Some(s) = self.regions.get_mut(&region) else { return };
        if !s.suppressed {
            return;
        }
        s.observed_while_suppressed += 1;
        if s.observed_while_suppressed >= retry_after {
            *s = RegionScore::default();
        }
    }

    fn reevaluate(&mut self, region: RegionId) {
        let (warmup, max_conflict, max_overflow, min_insts) = (
            self.cfg.warmup_epochs,
            self.cfg.max_conflict_rate,
            self.cfg.max_overflow_rate,
            self.cfg.min_epoch_insts,
        );
        let Some(s) = self.regions.get_mut(&region) else { return };
        if s.spawned < warmup {
            return;
        }
        let spawned = s.spawned as f64;
        // Squash-recycled successors are respawned, inflating the spawn
        // count; retired epochs are the honest denominator for conflicts.
        // Judging conflicts before enough epochs retired would mistake a
        // startup burst for a storm (and benchmarks like the paper's povray
        // profit from failed speculation's prefetching side effects, so
        // over-eager suppression costs real speedup).
        let enough_retires = s.retired >= warmup / 2;
        let conflict_rate = s.conflicts as f64 / s.retired.max(1) as f64;
        let overflow_rate = s.overflows as f64 / spawned;
        let mean_insts =
            if s.retired == 0 { 0.0 } else { s.retired_insts as f64 / s.retired as f64 };
        if (enough_retires && conflict_rate > max_conflict)
            || overflow_rate > max_overflow
            || (enough_retires && mean_insts < min_insts)
        {
            s.suppressed = true;
            s.observed_while_suppressed = 0;
        }
    }

    /// Records a spawn for `region`.
    pub fn on_spawn(&mut self, region: RegionId) {
        if self.cfg.enabled {
            self.regions.entry(region).or_default().spawned += 1;
        }
    }

    /// Records a conflict squash of an epoch of `region`.
    pub fn on_conflict(&mut self, region: RegionId) {
        if self.cfg.enabled {
            self.regions.entry(region).or_default().conflicts += 1;
            self.reevaluate(region);
        }
    }

    /// Records an SSB overflow stall for an epoch of `region`.
    pub fn on_overflow(&mut self, region: RegionId) {
        if self.cfg.enabled {
            self.regions.entry(region).or_default().overflows += 1;
            self.reevaluate(region);
        }
    }

    /// Records a successful epoch retirement of `insts` instructions.
    pub fn on_retire(&mut self, region: RegionId, insts: u64) {
        if self.cfg.enabled {
            let s = self.regions.entry(region).or_default();
            s.retired += 1;
            s.retired_insts += insts;
            self.reevaluate(region);
        }
    }

    /// Number of currently suppressed regions (statistics).
    pub fn suppressed_count(&self) -> usize {
        self.regions.values().filter(|s| s.suppressed).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled() -> DeselectConfig {
        DeselectConfig { enabled: true, ..DeselectConfig::default() }
    }

    #[test]
    fn disabled_never_suppresses() {
        let mut d = Deselector::new(&DeselectConfig::default());
        let r = RegionId(5);
        for _ in 0..100 {
            d.on_spawn(r);
            d.on_conflict(r);
        }
        assert!(!d.is_suppressed(r));
        assert_eq!(d.suppressed_count(), 0);
    }

    #[test]
    fn conflict_storm_suppresses_after_warmup() {
        let mut d = Deselector::new(&enabled());
        let r = RegionId(5);
        // Warmup: spawns, retires, and a growing pile of conflicts.
        for _ in 0..7 {
            d.on_spawn(r);
            d.on_retire(r, 50);
            d.on_conflict(r);
            d.on_conflict(r);
            d.on_conflict(r);
            assert!(!d.is_suppressed(r), "still warming up");
        }
        d.on_spawn(r);
        d.on_retire(r, 50);
        d.on_conflict(r);
        assert!(d.is_suppressed(r), "3 conflicts per retired epoch is a storm");
        assert_eq!(d.suppressed_count(), 1);
    }

    #[test]
    fn healthy_region_stays_selected() {
        let mut d = Deselector::new(&enabled());
        let r = RegionId(9);
        for _ in 0..100 {
            d.on_spawn(r);
            d.on_retire(r, 50);
        }
        assert!(!d.is_suppressed(r));
    }

    #[test]
    fn tiny_epochs_are_suppressed() {
        let mut d = Deselector::new(&enabled());
        let r = RegionId(2);
        for _ in 0..10 {
            d.on_spawn(r);
            d.on_retire(r, 2);
        }
        assert!(d.is_suppressed(r));
    }

    #[test]
    fn suppression_retries_after_a_while() {
        let cfg = DeselectConfig { retry_after: 10, ..enabled() };
        let mut d = Deselector::new(&cfg);
        let r = RegionId(3);
        for _ in 0..10 {
            d.on_spawn(r);
            d.on_retire(r, 50);
            d.on_conflict(r);
            d.on_conflict(r);
            d.on_conflict(r);
        }
        // The first 9 committed detaches see suppression; the 10th trips
        // the retry threshold and resets the region to a clean slate.
        for _ in 0..9 {
            assert!(d.is_suppressed(r));
            d.note_suppressed_detach(r);
        }
        d.note_suppressed_detach(r);
        assert!(!d.is_suppressed(r));
    }

    #[test]
    fn flip_flop_suppression_cycles_cleanly() {
        // suppress → retry reset → re-suppress → retry reset again: the
        // clean slate after each retry must re-run the full warmup, and a
        // region that keeps storming keeps getting re-suppressed.
        let cfg = DeselectConfig { retry_after: 10, ..enabled() };
        let mut d = Deselector::new(&cfg);
        let r = RegionId(7);
        for round in 0..3 {
            for _ in 0..10 {
                d.on_spawn(r);
                d.on_retire(r, 50);
                d.on_conflict(r);
                d.on_conflict(r);
                d.on_conflict(r);
            }
            assert!(d.is_suppressed(r), "round {round}: storm suppresses");
            // Mid-retry the region stays suppressed (no early reset).
            for k in 0..9 {
                d.note_suppressed_detach(r);
                assert!(d.is_suppressed(r), "round {round}: still suppressed at {k}");
            }
            d.note_suppressed_detach(r);
            assert!(!d.is_suppressed(r), "round {round}: retry grants a clean slate");
            // The clean slate must re-run warmup: a single early conflict
            // is not judged before `warmup_epochs` spawns.
            d.on_spawn(r);
            d.on_conflict(r);
            assert!(!d.is_suppressed(r), "round {round}: warmup restarts after reset");
        }
    }

    #[test]
    fn suppressed_detach_on_healthy_region_is_inert() {
        // The retry clock only runs for suppressed regions: committed
        // detaches of a healthy region must not erase its history.
        let cfg = DeselectConfig { retry_after: 2, ..enabled() };
        let mut d = Deselector::new(&cfg);
        let r = RegionId(8);
        for _ in 0..10 {
            d.on_spawn(r);
            d.on_retire(r, 50);
            d.note_suppressed_detach(r);
        }
        assert!(!d.is_suppressed(r));
        // History survived: a conflict storm is judged on the full record
        // (10 retires), not a freshly reset one still in warmup.
        for _ in 0..21 {
            d.on_conflict(r);
        }
        assert!(d.is_suppressed(r), "21 conflicts over 10 retires is a storm");
    }

    #[test]
    fn regions_are_independent() {
        let mut d = Deselector::new(&enabled());
        let (bad, good) = (RegionId(1), RegionId(2));
        for _ in 0..10 {
            d.on_spawn(bad);
            d.on_retire(bad, 50);
            d.on_conflict(bad);
            d.on_conflict(bad);
            d.on_conflict(bad);
            d.on_spawn(good);
            d.on_retire(good, 100);
        }
        assert!(d.is_suppressed(bad));
        assert!(!d.is_suppressed(good));
    }
}
