//! # lf-baselines — TLS comparator models for Table 3
//!
//! The paper's Table 3 compares LoopFrog against two classic thread-level
//! speculation designs: STAMPede (TLS across 4 cores with private-cache
//! speculation support) and Multiscalar (a ring of 8 simple processing
//! units). Neither artifact is available, so this crate models both with a
//! steady-state task-pipeline cost model ([`TlsScheme`]), parameterized
//! from the published descriptions, and drives them with the same kinds of
//! task sizes our workloads produce. As the paper itself notes, "speedup
//! numbers are not like-for-like due to wildly different baseline cores,
//! different benchmark sets, and area overheads" — this crate reproduces
//! the *structure* of that comparison.

#![warn(missing_docs)]

pub mod scheme;
pub mod table3;

pub use scheme::{SchemeKind, TlsScheme};
pub use table3::{table3, Table3Row};
