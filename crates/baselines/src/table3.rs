//! Table 3 generation: LoopFrog vs. STAMPede vs. Multiscalar.

use crate::scheme::{SchemeKind, TlsScheme};

/// One column of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Scheme name.
    pub scheme: &'static str,
    /// Whole-program (or suite) speedup — measured for LoopFrog, modeled
    /// for the comparators on their characteristic task sizes/coverage.
    pub speedup: f64,
    /// Cores / processing units.
    pub cores: String,
    /// Area relative to one baseline core.
    pub area: f64,
    /// Baseline core description.
    pub baseline: &'static str,
    /// Characteristic task sizes.
    pub task_sizes: &'static str,
    /// Deployment requirements.
    pub deployment: &'static str,
}

/// Builds the three Table 3 rows. `loopfrog_measured` is the measured
/// whole-suite speedup from the simulator (e.g. `1.095`); the comparator
/// speedups come from the cost models at their papers' characteristic task
/// sizes and coverages.
pub fn table3(loopfrog_measured: f64) -> Vec<Table3Row> {
    let st = TlsScheme::stampede();
    let ms = TlsScheme::multiscalar();
    debug_assert_eq!(st.kind, SchemeKind::Stampede);
    vec![
        Table3Row {
            scheme: "LoopFrog",
            speedup: loopfrog_measured,
            cores: "1 (4-way SMT)".into(),
            area: TlsScheme::loopfrog().area_factor,
            baseline: "8-issue OoO",
            task_sizes: "~100-10,000 instructions",
            deployment: "compiler, ISA hints",
        },
        Table3Row {
            scheme: "STAMPede (private cache) (2005)",
            // ~1,400-instruction tasks over a modest parallel coverage.
            speedup: st.whole_program_speedup(1400.0, 0.35),
            cores: format!("{}", st.units),
            area: st.area_factor,
            baseline: "4-issue simple OoO, 5 stages",
            task_sizes: "~1,400 instructions",
            deployment: "OS, compiler, ISA",
        },
        Table3Row {
            scheme: "MultiScalar (1995)",
            // Small tasks over a weak baseline; SPEC 1992 coverage after
            // the compiler's task selection.
            speedup: ms.whole_program_speedup(30.0, 0.68),
            cores: format!("{} (PUs)", ms.units),
            area: ms.area_factor,
            baseline: "2-issue limited OoO (ROB=32)",
            task_sizes: "10-50 instructions",
            deployment: "specialist µ-arch, compiler, ISA",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_speedups_land_near_published_numbers() {
        let rows = table3(1.10);
        let stampede = &rows[1];
        // Published: 1.16× on subsets of SPEC 1995/2000.
        assert!(
            stampede.speedup > 1.05 && stampede.speedup < 1.35,
            "STAMPede model: {:.2}",
            stampede.speedup
        );
        let ms = &rows[2];
        // Published: 2.16× on SPEC 1992.
        assert!(ms.speedup > 1.7 && ms.speedup < 2.7, "Multiscalar model: {:.2}", ms.speedup);
    }

    #[test]
    fn area_ordering_matches_table() {
        let rows = table3(1.10);
        assert!(rows[0].area < rows[1].area);
        assert!(rows[1].area < rows[2].area);
    }

    #[test]
    fn loopfrog_speedup_passes_through() {
        let rows = table3(1.095);
        assert!((rows[0].speedup - 1.095).abs() < 1e-12);
    }
}
