//! Steady-state task-pipeline model of a TLS scheme.
//!
//! A speculatively parallelized region is a stream of ordered tasks of `t`
//! instructions each. A scheme with `units` execution units runs tasks
//! concurrently; each task costs `t / unit_ipc` cycles of execution plus a
//! spawn overhead, and tasks retire in order through a commit port with a
//! fixed per-task latency. A fraction of tasks squash and re-execute.
//!
//! Steady-state region throughput is the minimum of the execution
//! throughput (`units` tasks in flight) and the commit serialization rate;
//! whole-program speedup follows from Amdahl over the parallel coverage.

/// Which classic scheme a parameter set models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// This paper's in-core threadlet design.
    LoopFrog,
    /// STAMPede-style TLS over multicore private caches (Steffan et al.,
    /// TOCS 2005).
    Stampede,
    /// Multiscalar-style ring of processing units (Sohi et al., ISCA 1995).
    Multiscalar,
}

/// Parameters of a TLS scheme (and its own sequential baseline).
#[derive(Debug, Clone)]
pub struct TlsScheme {
    /// Which scheme this models.
    pub kind: SchemeKind,
    /// Parallel execution units (threadlets, cores, or PUs).
    pub units: usize,
    /// Sustained IPC of one unit on task code.
    pub unit_ipc: f64,
    /// Sustained IPC of the scheme's own sequential baseline core.
    pub baseline_ipc: f64,
    /// Cycles to spawn/dispatch a task to a unit.
    pub spawn_overhead: f64,
    /// Cycles of in-order commit serialization per task (version merge,
    /// coherence, or register-file forwarding).
    pub commit_latency: f64,
    /// Fraction of tasks squashed and re-executed.
    pub squash_rate: f64,
    /// Area relative to the scheme's single baseline core.
    pub area_factor: f64,
}

impl TlsScheme {
    /// The LoopFrog configuration of Table 3: one 8-issue core with 4
    /// threadlet contexts and ~1.15× area.
    pub fn loopfrog() -> TlsScheme {
        TlsScheme {
            kind: SchemeKind::LoopFrog,
            units: 4,
            // Threadlets share one wide back end: each sustains a fraction
            // of the core's throughput when all are active.
            unit_ipc: 1.3,
            baseline_ipc: 2.6,
            spawn_overhead: 4.0,
            commit_latency: 5.0,
            squash_rate: 0.04,
            area_factor: 1.15,
        }
    }

    /// STAMPede over 4 single-issue-era OoO cores (tasks ≈ 1,400 insts).
    pub fn stampede() -> TlsScheme {
        TlsScheme {
            kind: SchemeKind::Stampede,
            units: 4,
            unit_ipc: 0.9,
            baseline_ipc: 0.9,
            // Cross-core spawn and cache-coherent commit are expensive.
            spawn_overhead: 80.0,
            commit_latency: 60.0,
            squash_rate: 0.12,
            area_factor: 4.2,
        }
    }

    /// Multiscalar's ring of 8 narrow PUs (tasks of 10–50 insts) against
    /// its 2-issue, ROB-32 baseline.
    pub fn multiscalar() -> TlsScheme {
        TlsScheme {
            kind: SchemeKind::Multiscalar,
            units: 8,
            unit_ipc: 0.8,
            baseline_ipc: 0.9,
            // Ring forwarding keeps spawn/commit cheap; squashes (and the
            // serialization of inter-task register chains, folded in here)
            // are the dominant loss.
            spawn_overhead: 2.0,
            commit_latency: 2.0,
            squash_rate: 0.20,
            area_factor: 8.0,
        }
    }

    /// Steady-state speedup on a parallel region of tasks of `task_insts`
    /// instructions.
    pub fn region_speedup(&self, task_insts: f64) -> f64 {
        assert!(task_insts > 0.0);
        let exec_time = task_insts / self.unit_ipc + self.spawn_overhead;
        // Squashes re-execute the task (on average once more per squash).
        let eff_exec = exec_time * (1.0 + self.squash_rate);
        // Tasks in flight across units vs. the in-order commit port.
        let exec_rate = self.units as f64 / eff_exec;
        let commit_rate = 1.0 / self.commit_latency.max(1e-9);
        let rate = exec_rate.min(commit_rate);
        let seq_rate = self.baseline_ipc / task_insts;
        rate / seq_rate
    }

    /// Whole-program speedup given parallel-region `coverage` (fraction of
    /// sequential execution time inside parallelized regions).
    pub fn whole_program_speedup(&self, task_insts: f64, coverage: f64) -> f64 {
        assert!((0.0..=1.0).contains(&coverage));
        let s = self.region_speedup(task_insts).max(1e-9);
        1.0 / ((1.0 - coverage) + coverage / s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopfrog_gains_on_medium_tasks() {
        let s = TlsScheme::loopfrog();
        // ~100-instruction epochs: clearly parallel.
        let r = s.region_speedup(100.0);
        assert!(r > 1.2 && r < 4.0, "{r}");
    }

    #[test]
    fn spawn_overhead_kills_tiny_tasks_on_multicore() {
        let st = TlsScheme::stampede();
        assert!(st.region_speedup(30.0) < 1.0, "30-inst tasks can't pay 80-cycle spawns");
        assert!(st.region_speedup(1400.0) > 1.5, "STAMPede's ~1,400-inst tasks do");
    }

    #[test]
    fn multiscalar_wins_big_over_weak_baseline() {
        let m = TlsScheme::multiscalar();
        let r = m.region_speedup(30.0);
        assert!(r > 2.0, "cheap ring spawns exploit small tasks: {r}");
    }

    #[test]
    fn commit_port_bounds_throughput() {
        let mut s = TlsScheme::loopfrog();
        s.commit_latency = 1000.0;
        // However many units, one task per 1000 cycles caps the region.
        let r = s.region_speedup(100.0);
        assert!(r < 0.3, "{r}");
    }

    #[test]
    fn amdahl_limits_whole_program() {
        let s = TlsScheme::loopfrog();
        let whole = s.whole_program_speedup(150.0, 0.4);
        let region = s.region_speedup(150.0);
        assert!(whole < region);
        assert!(whole > 1.0);
        // Zero coverage → no change.
        assert!((s.whole_program_speedup(150.0, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_units_until_commit_bound() {
        let mut s = TlsScheme::loopfrog();
        s.commit_latency = 1.0;
        let r4 = s.region_speedup(200.0);
        s.units = 8;
        let r8 = s.region_speedup(200.0);
        assert!(r8 > r4);
    }
}
