//! Text assembler: parses the syntax produced by the [`Display`]
//! implementations back into a [`Program`], with label support.
//!
//! The accepted grammar is line-based: an optional `label:` prefix, then an
//! instruction in the disassembly syntax (`add x1, x2, x3`,
//! `addi x1, x2, 5`, `ld8u x3, -8(x2)`, `blt x1, x2, label`, `detach
//! label`, …). `#` starts a comment. Branch and hint targets are label
//! names (literal `#addr` targets are rejected to keep parsed programs
//! relocatable).
//!
//! [`Display`]: std::fmt::Display
//!
//! # Examples
//!
//! ```
//! let program = lf_isa::parse_program(
//!     "        li   x1, 0
//!             li   x2, 80
//!      top:   ld8u x3, 4096(x1)
//!             muli x3, x3, 3
//!             st8  x3, 4096(x1)
//!             addi x1, x1, 8
//!             blt  x1, x2, top
//!             halt",
//! )?;
//! assert_eq!(program.len(), 8);
//! # Ok::<(), lf_isa::ParseError>(())
//! ```

use crate::builder::{Label, ProgramBuilder};
use crate::inst::{AluOp, BranchCond, FpuOp, MemSize};
use crate::program::Program;
use crate::reg::{self, Reg};
use std::collections::HashMap;
use std::fmt;

/// Errors from [`parse_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line of the error.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    if tok.len() < 2 || !tok.is_char_boundary(1) {
        return Err(err(line, format!("bad register `{tok}`")));
    }
    let (kind, num) = tok.split_at(1);
    let n: usize = num.parse().map_err(|_| err(line, format!("bad register `{tok}`")))?;
    match kind {
        "x" if n < 32 => Ok(reg::x(n)),
        "f" if n < 32 => Ok(reg::f(n)),
        _ => Err(err(line, format!("bad register `{tok}`"))),
    }
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseError> {
    let t = tok.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v =
        if let Some(hex) = t.strip_prefix("0x") { i64::from_str_radix(hex, 16) } else { t.parse() }
            .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
    Ok(if neg { -v } else { v })
}

/// `offset(base)` → (base, offset)
fn parse_mem_operand(tok: &str, line: usize) -> Result<(Reg, i64), ParseError> {
    let open =
        tok.find('(').ok_or_else(|| err(line, format!("expected `off(base)`, got `{tok}`")))?;
    let close = tok.rfind(')').ok_or_else(|| err(line, "missing `)`"))?;
    let offset = parse_imm(&tok[..open], line)?;
    let base = parse_reg(&tok[open + 1..close], line)?;
    Ok((base, offset))
}

struct Labels<'a> {
    map: HashMap<&'a str, Label>,
}

impl<'a> Labels<'a> {
    fn get(&mut self, b: &mut ProgramBuilder, name: &'a str) -> Label {
        *self.map.entry(name).or_insert_with(|| b.label(name))
    }
}

fn target<'a>(
    b: &mut ProgramBuilder,
    labels: &mut Labels<'a>,
    tok: &'a str,
    line: usize,
) -> Result<Label, ParseError> {
    if let Some(addr) = tok.strip_prefix('#').or_else(|| tok.strip_prefix('@')) {
        // Literal addresses are modeled as synthetic labels bound later; we
        // reject them to keep parsed programs relocatable.
        return Err(err(line, format!("literal target `#{addr}` not supported; use a label")));
    }
    Ok(labels.get(b, tok))
}

const ALU_OPS: [(&str, AluOp); 14] = [
    ("add", AluOp::Add),
    ("sub", AluOp::Sub),
    ("mul", AluOp::Mul),
    ("div", AluOp::Div),
    ("rem", AluOp::Rem),
    ("and", AluOp::And),
    ("or", AluOp::Or),
    ("xor", AluOp::Xor),
    ("sll", AluOp::Sll),
    ("srl", AluOp::Srl),
    ("sra", AluOp::Sra),
    ("slt", AluOp::Slt),
    ("sltu", AluOp::Sltu),
    ("seq", AluOp::Seq),
];

const FPU_OPS: [(&str, FpuOp); 11] = [
    ("fadd", FpuOp::FAdd),
    ("fsub", FpuOp::FSub),
    ("fmul", FpuOp::FMul),
    ("fdiv", FpuOp::FDiv),
    ("fmin", FpuOp::FMin),
    ("fmax", FpuOp::FMax),
    ("fsqrt", FpuOp::FSqrt),
    ("flt", FpuOp::FLt),
    ("feq", FpuOp::FEq),
    ("cvtif", FpuOp::CvtIF),
    ("cvtfi", FpuOp::CvtFI),
];

const BRANCHES: [(&str, BranchCond); 6] = [
    ("beq", BranchCond::Eq),
    ("bne", BranchCond::Ne),
    ("blt", BranchCond::Lt),
    ("bge", BranchCond::Ge),
    ("bltu", BranchCond::Ltu),
    ("bgeu", BranchCond::Geu),
];

fn mem_size(digit: &str, line: usize) -> Result<MemSize, ParseError> {
    match digit {
        "1" => Ok(MemSize::B1),
        "2" => Ok(MemSize::B2),
        "4" => Ok(MemSize::B4),
        "8" => Ok(MemSize::B8),
        _ => Err(err(line, format!("bad access size `{digit}`"))),
    }
}

/// Parses assembly text into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] naming the offending line for syntax errors,
/// unknown mnemonics, bad operands, or unresolved/duplicate labels.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut b = ProgramBuilder::new();
    let mut labels = Labels { map: HashMap::new() };

    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let mut text = raw;
        if let Some(hash) = text.find('#') {
            // `#` starts a comment unless it is a branch target literal —
            // which we reject anyway, so comments win.
            text = &text[..hash];
        }
        let mut text = text.trim();
        // Optional `label:` prefixes (possibly several).
        while let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(err(line_no, "malformed label"));
            }
            let l = labels.get(&mut b, name);
            b.bind(l);
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let (mnemonic, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
        let ops: Vec<&str> = rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        let want = |n: usize| -> Result<(), ParseError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(line_no, format!("`{mnemonic}` expects {n} operands, got {}", ops.len())))
            }
        };

        // Loads/stores: ld<1|2|4|8><u|s> / st<1|2|4|8>.
        if let Some(rest) = mnemonic.strip_prefix("ld") {
            want(2)?;
            let (size, sign) = rest.split_at(rest.len().saturating_sub(1));
            let signed = match sign {
                "s" => true,
                "u" => false,
                _ => return Err(err(line_no, format!("bad load mnemonic `{mnemonic}`"))),
            };
            let size = mem_size(size, line_no)?;
            let dst = parse_reg(ops[0], line_no)?;
            let (base, offset) = parse_mem_operand(ops[1], line_no)?;
            if signed {
                b.load_signed(dst, base, offset, size);
            } else {
                b.load(dst, base, offset, size);
            }
            continue;
        }
        if let Some(size) = mnemonic.strip_prefix("st") {
            want(2)?;
            let size = mem_size(size, line_no)?;
            let src_r = parse_reg(ops[0], line_no)?;
            let (base, offset) = parse_mem_operand(ops[1], line_no)?;
            b.store(src_r, base, offset, size);
            continue;
        }

        // ALU immediate forms end in `i` (e.g. addi, muli, slti).
        if let Some(stem) = mnemonic.strip_suffix('i') {
            if let Some((_, op)) = ALU_OPS.iter().find(|(n, _)| *n == stem) {
                want(3)?;
                b.alui(
                    *op,
                    parse_reg(ops[0], line_no)?,
                    parse_reg(ops[1], line_no)?,
                    parse_imm(ops[2], line_no)?,
                );
                continue;
            }
        }
        if let Some((_, op)) = ALU_OPS.iter().find(|(n, _)| *n == mnemonic) {
            want(3)?;
            b.alu(
                *op,
                parse_reg(ops[0], line_no)?,
                parse_reg(ops[1], line_no)?,
                parse_reg(ops[2], line_no)?,
            );
            continue;
        }
        if let Some((_, op)) = FPU_OPS.iter().find(|(n, _)| *n == mnemonic) {
            want(3)?;
            b.fpu(
                *op,
                parse_reg(ops[0], line_no)?,
                parse_reg(ops[1], line_no)?,
                parse_reg(ops[2], line_no)?,
            );
            continue;
        }
        if let Some((_, cond)) = BRANCHES.iter().find(|(n, _)| *n == mnemonic) {
            want(3)?;
            let a = parse_reg(ops[0], line_no)?;
            let rb = parse_reg(ops[1], line_no)?;
            let t = target(&mut b, &mut labels, ops[2], line_no)?;
            b.branch(*cond, a, rb, t);
            continue;
        }

        match mnemonic {
            "li" => {
                want(2)?;
                b.li(parse_reg(ops[0], line_no)?, parse_imm(ops[1], line_no)?);
            }
            "mv" => {
                want(2)?;
                b.mv(parse_reg(ops[0], line_no)?, parse_reg(ops[1], line_no)?);
            }
            "j" => {
                want(1)?;
                let t = target(&mut b, &mut labels, ops[0], line_no)?;
                b.jump(t);
            }
            "call" => {
                want(2)?;
                let t = target(&mut b, &mut labels, ops[0], line_no)?;
                b.call(t, parse_reg(ops[1], line_no)?);
            }
            "jr" => {
                want(1)?;
                b.jump_reg(parse_reg(ops[0], line_no)?);
            }
            "detach" => {
                want(1)?;
                let t = target(&mut b, &mut labels, ops[0], line_no)?;
                b.detach(t);
            }
            "reattach" => {
                want(1)?;
                let t = target(&mut b, &mut labels, ops[0], line_no)?;
                b.reattach(t);
            }
            "sync" => {
                want(1)?;
                let t = target(&mut b, &mut labels, ops[0], line_no)?;
                b.sync(t);
            }
            "nop" => {
                want(0)?;
                b.nop();
            }
            "halt" => {
                want(0)?;
                b.halt();
            }
            _ => return Err(err(line_no, format!("unknown mnemonic `{mnemonic}`"))),
        }
    }

    b.build().map_err(|e| err(src.lines().count(), e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emu::Emulator;
    use crate::mem::Memory;

    #[test]
    fn parses_and_runs_a_loop() {
        let p = parse_program(
            "        li   x1, 0
                     li   x2, 10      # bound
             top:    addi x1, x1, 1
                     blt  x1, x2, top
                     halt",
        )
        .unwrap();
        let mut e = Emulator::new(&p, Memory::new(64));
        e.run(1000).unwrap();
        assert!(e.is_halted());
        assert_eq!(e.reg(crate::reg::x(1)), 10);
    }

    #[test]
    fn parses_hints_with_label_regions() {
        let p = parse_program(
            "        li   x1, 0
             head:   detach cont
                     ld8u x3, 256(x1)
                     st8  x3, 512(x1)
                     reattach cont
             cont:   addi x1, x1, 8
                     blti x0, x0, 0   # placeholder rejected below
                     halt",
        );
        // `blti` is not a mnemonic: errors must name the line.
        let e = p.unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.message.contains("blti"));
    }

    #[test]
    fn hint_regions_resolve_to_label_addresses() {
        let p = parse_program(
            "        detach cont
                     reattach cont
             cont:   sync cont
                     halt",
        )
        .unwrap();
        use crate::inst::{HintKind, RegionId};
        assert_eq!(p.fetch(0).unwrap().hint(), Some((HintKind::Detach, RegionId(2))));
        assert_eq!(p.fetch(2).unwrap().hint(), Some((HintKind::Sync, RegionId(2))));
    }

    #[test]
    fn memory_operands_and_sizes() {
        let p = parse_program("ld4s x3, -8(x2)\nst2 x4, 0x10(x5)\nhalt").unwrap();
        assert_eq!(p.fetch(0).unwrap().to_string(), "ld4s x3, -8(x2)");
        assert_eq!(p.fetch(1).unwrap().to_string(), "st2 x4, 16(x5)");
    }

    #[test]
    fn display_round_trip_for_label_free_instructions() {
        // Every non-control instruction must re-parse from its own
        // disassembly.
        let src = "li x1, -5\n\
                   add x2, x1, x1\n\
                   subi x3, x2, 7\n\
                   fadd f1, f2, f3\n\
                   fsqrt f4, f5, f5\n\
                   ld8u x6, 128(x1)\n\
                   st1 x6, -1(x2)\n\
                   nop\n\
                   halt";
        let p1 = parse_program(src).unwrap();
        let redisassembled: Vec<String> = p1.insts().iter().map(|i| i.to_string()).collect();
        let p2 = parse_program(&redisassembled.join("\n")).unwrap();
        assert_eq!(p1.insts(), p2.insts());
    }

    #[test]
    fn unknown_register_and_bad_operands_error_with_lines() {
        assert_eq!(parse_program("add x1, x2, x99").unwrap_err().line, 1);
        assert_eq!(parse_program("li x1").unwrap_err().line, 1);
        // Degenerate operands must error, not panic.
        assert!(parse_program("ld8u x1, 0()").is_err());
        assert!(parse_program("ld8u x1, (x2").is_err());
        assert!(parse_program("add x1, x2, x").is_err());
        let e = parse_program("\n\nj nowhere_bound\n").unwrap_err();
        assert!(e.message.contains("nowhere_bound"), "{e}");
    }

    #[test]
    fn calls_and_returns_parse() {
        let p = parse_program(
            "        j    start
             func:   muli x10, x10, 3
                     jr   x1
             start:  li   x10, 7
                     call func, x1
                     halt",
        )
        .unwrap();
        let mut e = Emulator::new(&p, Memory::new(64));
        e.run(1000).unwrap();
        assert_eq!(e.reg(crate::reg::x(10)), 21);
    }
}
