//! Architectural register file layout.
//!
//! The LoopFrog reproduction ISA has a unified architectural register space of
//! 64 registers: `x0..=x31` are integer registers (with `x0` hardwired to
//! zero, RISC-style) and `f0..=f31` are floating-point registers holding
//! `f64` bit patterns. A single flat space keeps register renaming, register
//! loop-carried-dependence analysis, and checkpointing uniform across the
//! integer and floating-point domains.

use std::fmt;

/// Number of integer architectural registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: usize = 32;
/// Total architectural registers (integer + floating point).
pub const NUM_ARCH_REGS: usize = NUM_INT_REGS + NUM_FP_REGS;

/// An architectural register name.
///
/// Indices `0..32` are the integer registers (`x0` is hardwired to zero) and
/// `32..64` are the floating-point registers.
///
/// # Examples
///
/// ```
/// use lf_isa::{reg, Reg};
///
/// let a = reg::x(5);
/// assert!(a.is_int());
/// assert_eq!(a.to_string(), "x5");
/// let f = reg::f(2);
/// assert!(f.is_fp());
/// assert_eq!(f.index(), 34);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register from a flat index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_REGS`.
    #[inline]
    pub fn new(index: usize) -> Reg {
        assert!(index < NUM_ARCH_REGS, "register index {index} out of range");
        Reg(index as u8)
    }

    /// The flat index of this register in `0..NUM_ARCH_REGS`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is an integer register (`x0..=x31`).
    #[inline]
    pub fn is_int(self) -> bool {
        (self.0 as usize) < NUM_INT_REGS
    }

    /// Whether this is a floating-point register (`f0..=f31`).
    #[inline]
    pub fn is_fp(self) -> bool {
        !self.is_int()
    }

    /// Whether this is the hardwired zero register `x0`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_int() {
            write!(f, "x{}", self.0)
        } else {
            write!(f, "f{}", self.0 as usize - NUM_INT_REGS)
        }
    }
}

/// Integer register `xN`.
///
/// # Panics
///
/// Panics if `n >= 32`.
#[inline]
pub fn x(n: usize) -> Reg {
    assert!(n < NUM_INT_REGS, "integer register x{n} out of range");
    Reg::new(n)
}

/// Floating-point register `fN`.
///
/// # Panics
///
/// Panics if `n >= 32`.
#[inline]
pub fn f(n: usize) -> Reg {
    assert!(n < NUM_FP_REGS, "fp register f{n} out of range");
    Reg::new(NUM_INT_REGS + n)
}

/// The hardwired zero register `x0`.
pub const ZERO: Reg = Reg(0);
/// Conventional stack pointer (`x2`).
pub const SP: Reg = Reg(2);
/// Conventional link register (`x1`).
pub const RA: Reg = Reg(1);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_ranges() {
        assert!(x(0).is_zero());
        assert!(x(31).is_int());
        assert!(f(0).is_fp());
        assert_eq!(f(31).index(), 63);
    }

    #[test]
    fn display_names() {
        assert_eq!(x(7).to_string(), "x7");
        assert_eq!(f(9).to_string(), "f9");
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let _ = Reg::new(64);
    }

    #[test]
    fn ordering_is_flat_index() {
        assert!(x(31) < f(0));
    }
}
