//! # lf-isa — the LoopFrog reproduction ISA
//!
//! A small RISC-like instruction set extended with the three LoopFrog hint
//! instructions (`detach`, `reattach`, `sync`) from *LoopFrog: In-Core
//! Hint-Based Loop Parallelization* (MICRO 2025, §3.1). This crate provides:
//!
//! - the instruction definitions ([`Inst`], [`AluOp`], [`FpuOp`], …),
//! - a unified 64-register architectural register space ([`Reg`]),
//! - a label-resolving assembler ([`ProgramBuilder`]),
//! - a byte-addressed memory image ([`Memory`]),
//! - and a sequential golden-model interpreter ([`Emulator`]) that treats
//!   hints as NOPs — the semantics every LoopFrog execution must preserve.
//!
//! # Examples
//!
//! Assemble and run a counted loop:
//!
//! ```
//! use lf_isa::{ProgramBuilder, Emulator, Memory, reg, AluOp, BranchCond};
//!
//! let mut b = ProgramBuilder::new();
//! let top = b.label("top");
//! b.li(reg::x(1), 0);
//! b.li(reg::x(2), 0);
//! b.bind(top);
//! b.alu(AluOp::Add, reg::x(2), reg::x(2), reg::x(1));
//! b.alui(AluOp::Add, reg::x(1), reg::x(1), 1);
//! b.branch(BranchCond::Lt, reg::x(1), reg::x(1), top); // never taken
//! b.halt();
//! let program = b.build()?;
//! let mut emu = Emulator::new(&program, Memory::new(64));
//! emu.run(100)?;
//! assert!(emu.is_halted());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod checksum;
pub mod diff;
pub mod emu;
pub mod fast;
pub mod inst;
pub mod mem;
pub mod parse;
pub mod program;
pub mod reg;

pub use builder::{BuildError, Label, ProgramBuilder};
pub use diff::{MemDiff, RegDiff, StateDiff};
pub use emu::{
    eval_alu, eval_branch, eval_fpu, extend_load, EmuError, Emulator, ExecResult, Profile,
    StepStop, StopReason,
};
pub use fast::{
    Checkpoint, CheckpointError, FastTier, MemAccessHint, WarmHints, BBV_NEW_LINES_KEY,
};
pub use inst::{AluOp, BranchCond, FpuOp, FuClass, HintKind, Inst, MemSize, Operand, RegionId};
pub use mem::{MemError, Memory};
pub use parse::{parse_program, ParseError};
pub use program::Program;
pub use reg::{Reg, NUM_ARCH_REGS, NUM_FP_REGS, NUM_INT_REGS};
