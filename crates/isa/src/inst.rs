//! Instruction set definition.
//!
//! A small RISC-like ISA extended with the three LoopFrog hint instructions
//! (`detach`, `reattach`, `sync`; paper §3.1). Hints carry the continuation
//! block's address, which doubles as a unique region identifier. Hints never
//! change sequential semantics: a core that treats them as NOPs executes the
//! program identically.
//!
//! Code is word-addressed: a program counter is an index into the program's
//! instruction vector. Data memory is byte-addressed.

use crate::reg::Reg;
use std::fmt;

/// A region identifier: the code address of the region's continuation block
/// (paper §3.1, "the machine instructions each carry the continuation block's
/// address, which serves as a unique region ID").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub usize);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Integer ALU operations. The `b` operand may be a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (wrapping).
    Add,
    /// Subtraction (wrapping).
    Sub,
    /// Multiplication (wrapping, low 64 bits).
    Mul,
    /// Signed division; division by zero yields `u64::MAX` (RISC-V style).
    Div,
    /// Signed remainder; remainder by zero yields the dividend.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount masked to 6 bits).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set if less-than, signed (`1` or `0`).
    Slt,
    /// Set if less-than, unsigned.
    Sltu,
    /// Set if equal.
    Seq,
}

/// Floating-point operations over `f64` values stored in `f` registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// Addition.
    FAdd,
    /// Subtraction.
    FSub,
    /// Multiplication.
    FMul,
    /// Division.
    FDiv,
    /// Minimum.
    FMin,
    /// Maximum.
    FMax,
    /// Square root of operand `a` (operand `b` is ignored).
    FSqrt,
    /// Set integer-style 1/0 if `a < b`.
    FLt,
    /// Set integer-style 1/0 if `a == b`.
    FEq,
    /// Convert signed integer in `a` to f64.
    CvtIF,
    /// Convert f64 in `a` to signed integer (truncating, saturating).
    CvtFI,
}

/// Branch conditions for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Taken if `a == b`.
    Eq,
    /// Taken if `a != b`.
    Ne,
    /// Taken if `a < b`, signed.
    Lt,
    /// Taken if `a >= b`, signed.
    Ge,
    /// Taken if `a < b`, unsigned.
    Ltu,
    /// Taken if `a >= b`, unsigned.
    Geu,
}

/// Memory access sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSize {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemSize {
    /// Access width in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
            MemSize::B8 => 8,
        }
    }
}

/// The three LoopFrog parallelization hints (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HintKind {
    /// Marks a potential fork point at the header→body boundary. The
    /// successor epoch may be launched at the continuation address.
    Detach,
    /// Marks the body→continuation boundary: a detached threadlet that
    /// reaches it has caught up to its successor's starting point and halts.
    Reattach,
    /// Annotates a loop-exit edge: successors were misspeculated and must be
    /// squashed; execution continues sequentially after the sync.
    Sync,
}

/// The second source operand of an ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// A 64-bit immediate.
    Imm(i64),
}

/// One machine instruction.
///
/// Branch and jump targets are word addresses (indices into the program's
/// instruction vector), pre-resolved by [`crate::ProgramBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Integer ALU operation `dst = op(a, b)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Reg,
        /// Second source (register or immediate).
        b: Operand,
    },
    /// Floating-point operation `dst = op(a, b)`.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Reg,
        /// Second source.
        b: Reg,
    },
    /// Load immediate: `dst = imm`.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Load from memory: `dst = mem[base + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Access size.
        size: MemSize,
        /// Sign-extend the loaded value.
        signed: bool,
    },
    /// Store to memory: `mem[base + offset] = src`.
    Store {
        /// Data register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Access size.
        size: MemSize,
    },
    /// Conditional branch to `target` if `cond(a, b)`.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First comparison source.
        a: Reg,
        /// Second comparison source.
        b: Reg,
        /// Word-addressed branch target.
        target: usize,
    },
    /// Unconditional direct jump.
    Jump {
        /// Word-addressed target.
        target: usize,
    },
    /// Direct call: `link = pc + 1; pc = target`.
    Call {
        /// Word-addressed target.
        target: usize,
        /// Link register receiving the return address.
        link: Reg,
    },
    /// Indirect jump through a register (used for returns).
    JumpReg {
        /// Register holding the word-addressed target.
        base: Reg,
    },
    /// A LoopFrog hint. Semantically a NOP.
    Hint {
        /// Which hint.
        kind: HintKind,
        /// The region (continuation address) the hint belongs to.
        region: RegionId,
    },
    /// No operation.
    Nop,
    /// Stop execution.
    Halt,
}

/// Functional-unit classes, used by the timing model to map instructions to
/// execution pipes (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Simple integer ALU / branch pipe.
    IntAlu,
    /// Integer multiply/divide pipe.
    IntMulDiv,
    /// Floating-point / SIMD pipe.
    Fp,
    /// FP divide / sqrt pipe.
    FpDivSqrt,
    /// Load pipe.
    Load,
    /// Store pipe.
    Store,
    /// Consumes no execution pipe (hints, nops, direct jumps).
    None,
}

impl Inst {
    /// The destination register written by this instruction, if any.
    /// Writes to the hardwired zero register are reported as `None`.
    pub fn def(&self) -> Option<Reg> {
        let d = match *self {
            Inst::Alu { dst, .. }
            | Inst::Fpu { dst, .. }
            | Inst::MovImm { dst, .. }
            | Inst::Load { dst, .. } => Some(dst),
            Inst::Call { link, .. } => Some(link),
            _ => None,
        };
        d.filter(|r| !r.is_zero())
    }

    /// The source registers read by this instruction (up to two).
    /// Reads of the zero register are included (they read the constant 0).
    pub fn uses(&self) -> [Option<Reg>; 2] {
        match *self {
            Inst::Alu { a, b, .. } => match b {
                Operand::Reg(rb) => [Some(a), Some(rb)],
                Operand::Imm(_) => [Some(a), None],
            },
            Inst::Fpu { op: FpuOp::FSqrt | FpuOp::CvtIF | FpuOp::CvtFI, a, .. } => [Some(a), None],
            Inst::Fpu { a, b, .. } => [Some(a), Some(b)],
            Inst::Load { base, .. } => [Some(base), None],
            Inst::Store { src, base, .. } => [Some(base), Some(src)],
            Inst::Branch { a, b, .. } => [Some(a), Some(b)],
            Inst::JumpReg { base } => [Some(base), None],
            _ => [None, None],
        }
    }

    /// Whether this instruction may redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jump { .. } | Inst::Call { .. } | Inst::JumpReg { .. }
        )
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// Whether this instruction accesses data memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// Whether this is a load.
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. })
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. })
    }

    /// Whether this is a LoopFrog hint.
    pub fn is_hint(&self) -> bool {
        matches!(self, Inst::Hint { .. })
    }

    /// The hint kind and region, if this is a hint.
    pub fn hint(&self) -> Option<(HintKind, RegionId)> {
        match *self {
            Inst::Hint { kind, region } => Some((kind, region)),
            _ => None,
        }
    }

    /// The functional-unit class this instruction executes on.
    pub fn fu_class(&self) -> FuClass {
        match self {
            Inst::Alu { op, .. } => match op {
                AluOp::Mul | AluOp::Div | AluOp::Rem => FuClass::IntMulDiv,
                _ => FuClass::IntAlu,
            },
            Inst::Fpu { op, .. } => match op {
                FpuOp::FDiv | FpuOp::FSqrt => FuClass::FpDivSqrt,
                _ => FuClass::Fp,
            },
            Inst::MovImm { .. } => FuClass::IntAlu,
            Inst::Load { .. } => FuClass::Load,
            Inst::Store { .. } => FuClass::Store,
            Inst::Branch { .. } | Inst::JumpReg { .. } => FuClass::IntAlu,
            Inst::Jump { .. } | Inst::Call { .. } => FuClass::None,
            Inst::Hint { .. } | Inst::Nop | Inst::Halt => FuClass::None,
        }
    }

    /// Execution latency in cycles for the timing model (pipelined unless the
    /// functional unit says otherwise).
    pub fn exec_latency(&self) -> u64 {
        match self {
            Inst::Alu { op, .. } => match op {
                AluOp::Mul => 3,
                AluOp::Div | AluOp::Rem => 12,
                _ => 1,
            },
            Inst::Fpu { op, .. } => match op {
                FpuOp::FAdd | FpuOp::FSub | FpuOp::FMin | FpuOp::FMax => 2,
                FpuOp::FMul => 3,
                FpuOp::FDiv => 12,
                FpuOp::FSqrt => 16,
                FpuOp::FLt | FpuOp::FEq | FpuOp::CvtIF | FpuOp::CvtFI => 2,
            },
            // Address generation only; cache latency is added by the memory
            // system.
            Inst::Load { .. } | Inst::Store { .. } => 1,
            _ => 1,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, dst, a, b } => {
                let opn = format!("{op:?}").to_lowercase();
                match b {
                    Operand::Reg(rb) => write!(f, "{opn} {dst}, {a}, {rb}"),
                    Operand::Imm(i) => write!(f, "{opn}i {dst}, {a}, {i}"),
                }
            }
            Inst::Fpu { op, dst, a, b } => {
                write!(f, "{} {dst}, {a}, {b}", format!("{op:?}").to_lowercase())
            }
            Inst::MovImm { dst, imm } => write!(f, "li {dst}, {imm}"),
            Inst::Load { dst, base, offset, size, signed } => {
                let s = if signed { "s" } else { "u" };
                write!(f, "ld{}{s} {dst}, {offset}({base})", size.bytes())
            }
            Inst::Store { src, base, offset, size } => {
                write!(f, "st{} {src}, {offset}({base})", size.bytes())
            }
            Inst::Branch { cond, a, b, target } => {
                write!(f, "b{} {a}, {b}, #{target}", format!("{cond:?}").to_lowercase())
            }
            Inst::Jump { target } => write!(f, "j #{target}"),
            Inst::Call { target, link } => write!(f, "call #{target}, {link}"),
            Inst::JumpReg { base } => write!(f, "jr {base}"),
            Inst::Hint { kind, region } => {
                write!(f, "{} {region}", format!("{kind:?}").to_lowercase())
            }
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;

    #[test]
    fn def_filters_zero_register() {
        let i = Inst::Alu { op: AluOp::Add, dst: reg::ZERO, a: reg::x(1), b: Operand::Imm(1) };
        assert_eq!(i.def(), None);
        let i = Inst::Alu { op: AluOp::Add, dst: reg::x(3), a: reg::x(1), b: Operand::Imm(1) };
        assert_eq!(i.def(), Some(reg::x(3)));
    }

    #[test]
    fn uses_of_store_include_data_and_base() {
        let i = Inst::Store { src: reg::x(4), base: reg::x(5), offset: 8, size: MemSize::B8 };
        assert_eq!(i.uses(), [Some(reg::x(5)), Some(reg::x(4))]);
    }

    #[test]
    fn unary_fpu_uses_one_source() {
        let i = Inst::Fpu { op: FpuOp::FSqrt, dst: reg::f(0), a: reg::f(1), b: reg::f(2) };
        assert_eq!(i.uses(), [Some(reg::f(1)), None]);
    }

    #[test]
    fn fu_classes() {
        let mul = Inst::Alu { op: AluOp::Mul, dst: reg::x(1), a: reg::x(2), b: Operand::Imm(3) };
        assert_eq!(mul.fu_class(), FuClass::IntMulDiv);
        let hint = Inst::Hint { kind: HintKind::Detach, region: RegionId(7) };
        assert_eq!(hint.fu_class(), FuClass::None);
        assert!(hint.is_hint());
    }

    #[test]
    fn display_roundtrip_smoke() {
        let i = Inst::Load {
            dst: reg::x(1),
            base: reg::x(2),
            offset: -8,
            size: MemSize::B4,
            signed: true,
        };
        assert_eq!(i.to_string(), "ld4s x1, -8(x2)");
        let h = Inst::Hint { kind: HintKind::Sync, region: RegionId(12) };
        assert_eq!(h.to_string(), "sync @12");
    }
}
