//! Program representation.

use crate::inst::{Inst, RegionId};
use std::collections::BTreeMap;
use std::fmt;

/// A complete program: an instruction vector (word-addressed) plus optional
/// debug labels.
///
/// Programs are produced either by hand through [`crate::ProgramBuilder`] or
/// by the `lf-workloads` kernels, and are transformed by the `lf-compiler`
/// hint-insertion pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
    entry: usize,
    labels: BTreeMap<usize, String>,
}

impl Program {
    /// Creates a program from raw instructions, entering at address 0.
    pub fn new(insts: Vec<Inst>) -> Program {
        Program { insts, entry: 0, labels: BTreeMap::new() }
    }

    /// Creates a program with debug labels (address → name).
    pub fn with_labels(insts: Vec<Inst>, labels: BTreeMap<usize, String>) -> Program {
        Program { insts, entry: 0, labels }
    }

    /// The instruction at `pc`, if in range.
    #[inline]
    pub fn fetch(&self, pc: usize) -> Option<Inst> {
        self.insts.get(pc).copied()
    }

    /// All instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Mutable access to the instruction vector (used by the hint-insertion
    /// pass to rewrite programs in place).
    pub fn insts_mut(&mut self) -> &mut Vec<Inst> {
        &mut self.insts
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The entry program counter.
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// Debug label at an address, if any.
    pub fn label_at(&self, pc: usize) -> Option<&str> {
        self.labels.get(&pc).map(String::as_str)
    }

    /// All labels (address → name).
    pub fn labels(&self) -> &BTreeMap<usize, String> {
        &self.labels
    }

    /// The set of region IDs named by hint instructions in this program.
    pub fn regions(&self) -> Vec<RegionId> {
        let mut v: Vec<RegionId> =
            self.insts.iter().filter_map(|i| i.hint().map(|(_, r)| r)).collect();
        v.sort();
        v.dedup();
        v
    }

    /// A stable content checksum over the executable code (instructions
    /// and entry point; debug labels are excluded). Two programs with
    /// equal fingerprints execute identically, so the experiment engine
    /// uses this as the program component of a run fingerprint.
    pub fn code_fingerprint(&self) -> u64 {
        use std::fmt::Write as _;
        let mut text = String::with_capacity(self.insts.len() * 24);
        for inst in &self.insts {
            // `Inst`'s Debug form is a canonical, stable rendering of every
            // operand; separate instructions with a newline so adjacent
            // encodings cannot bleed together.
            let _ = writeln!(text, "{inst:?}");
        }
        let mut h = crate::checksum::fnv1a(text.as_bytes());
        h ^= crate::checksum::fnv1a_u64(&[self.entry as u64]);
        h
    }

    /// Returns a copy of this program with every hint replaced by `Nop`.
    ///
    /// Useful for checking that hints never change sequential semantics.
    pub fn without_hints(&self) -> Program {
        let mut p = self.clone();
        for i in p.insts.iter_mut() {
            if i.is_hint() {
                *i = Inst::Nop;
            }
        }
        p
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, inst) in self.insts.iter().enumerate() {
            if let Some(l) = self.label_at(pc) {
                writeln!(f, "{l}:")?;
            }
            writeln!(f, "  {pc:4}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{HintKind, Inst};

    #[test]
    fn regions_are_deduped_and_sorted() {
        let p = Program::new(vec![
            Inst::Hint { kind: HintKind::Detach, region: RegionId(5) },
            Inst::Hint { kind: HintKind::Sync, region: RegionId(2) },
            Inst::Hint { kind: HintKind::Reattach, region: RegionId(5) },
            Inst::Halt,
        ]);
        assert_eq!(p.regions(), vec![RegionId(2), RegionId(5)]);
    }

    #[test]
    fn without_hints_replaces_with_nops() {
        let p = Program::new(vec![
            Inst::Hint { kind: HintKind::Detach, region: RegionId(1) },
            Inst::Halt,
        ]);
        let q = p.without_hints();
        assert_eq!(q.fetch(0), Some(Inst::Nop));
        assert_eq!(q.fetch(1), Some(Inst::Halt));
        assert_eq!(q.len(), p.len());
    }

    #[test]
    fn code_fingerprint_tracks_code_not_labels() {
        let hinted = Program::new(vec![
            Inst::Hint { kind: HintKind::Detach, region: RegionId(1) },
            Inst::Halt,
        ]);
        let plain = hinted.without_hints();
        assert_ne!(hinted.code_fingerprint(), plain.code_fingerprint());

        let mut labels = BTreeMap::new();
        labels.insert(0, "loop_head".to_string());
        let labelled = Program::with_labels(
            vec![Inst::Hint { kind: HintKind::Detach, region: RegionId(1) }, Inst::Halt],
            labels,
        );
        assert_eq!(hinted.code_fingerprint(), labelled.code_fingerprint());
    }
}
