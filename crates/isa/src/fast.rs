//! Fast functional tier: predecoded batch-dispatch execution with inline
//! SimPoint basic-block-vector collection and warm-checkpoint capture.
//!
//! The golden [`crate::Emulator`] interprets one instruction per call and
//! threads a `Result` through every step — exactly right for a
//! differential reference, and exactly wrong for fast-forwarding hundreds
//! of millions of instructions to a SimPoint. [`FastTier`] is the
//! emulator-speed functional CPU model of the tiered simulation path (the
//! gem5 `AtomicSimpleCPU` role): the program is predecoded once into a
//! dense op stream, the hot loop dispatches on that stream in batches with
//! no per-step `Result` plumbing (memory faults latch a pending error and
//! exit the batch), and per-basic-block execution counts accumulate in a
//! dense array that is compacted into a sparse interval vector only at
//! interval boundaries.
//!
//! While fast-forwarding, the tier also performs *functional warming*: it
//! records bounded, microarchitecture-agnostic event streams — recent
//! conditional-branch outcomes, indirect-jump targets, data-access
//! addresses, and instruction-fetch lines — that a detailed core can
//! replay into its branch predictor, caches, and prefetchers when it
//! resumes from a [`Checkpoint`]. The hints are event *streams*, not table
//! dumps, so `lf-isa` stays independent of any particular predictor or
//! cache geometry.
//!
//! Architectural behaviour is bit-identical to the golden emulator: the
//! fast tier exists to move the same state faster, never to approximate
//! it. `tests` below pin checksum equality at arbitrary boundaries.

use crate::checksum::{fnv1a, fnv1a_u64};
use crate::emu::{eval_alu, eval_branch, eval_fpu, EmuError, StepStop};
use crate::inst::{AluOp, BranchCond, FpuOp, Inst, Operand};
use crate::mem::Memory;
use crate::program::Program;
use crate::reg::NUM_ARCH_REGS;
use std::collections::HashMap;
use std::fmt;

/// Instruction word size in bytes for fetch-line bookkeeping; matches the
/// detailed core's I-cache addressing.
const INST_BYTES: u64 = 4;
/// Fetch-line size in bytes for the warm fetch stream (the detailed
/// front end fetches 64-byte lines).
const FETCH_LINE_BYTES: u64 = 64;

/// Synthetic BBV dimension carrying the interval's count of first-touch
/// data lines (see [`FastTier::vectors`]). `usize::MAX` can never collide
/// with a real basic-block id (block ids index the instruction array).
pub const BBV_NEW_LINES_KEY: usize = usize::MAX;
/// Scale applied to the first-touch line count before it joins the BBV,
/// so working-set growth carries weight comparable to the instruction
/// counts it sits next to after per-interval normalization.
const BBV_NEW_LINES_WEIGHT: u64 = 16;

/// Capacity of the recorded conditional-branch outcome ring.
const BRANCH_RING: usize = 16_384;
/// Capacity of the recorded data-access ring.
const MEM_RING: usize = 16_384;
/// Capacity of the recorded instruction-fetch-line ring.
const FETCH_RING: usize = 4_096;
/// Capacity of the recorded indirect-target ring.
const INDIRECT_RING: usize = 1_024;

/// One predecoded operation. Mirrors [`Inst`] with operand registers
/// flattened to plain indices so the dispatch loop reads everything it
/// needs from one small `Copy` value.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// ALU with a register second operand.
    AluRR {
        op: AluOp,
        dst: u8,
        a: u8,
        b: u8,
    },
    /// ALU with an immediate second operand.
    AluRI {
        op: AluOp,
        dst: u8,
        a: u8,
        imm: u64,
    },
    Fpu {
        op: FpuOp,
        dst: u8,
        a: u8,
        b: u8,
    },
    MovImm {
        dst: u8,
        imm: u64,
    },
    Load {
        dst: u8,
        base: u8,
        offset: i64,
        size: u64,
        sext_shift: u32,
    },
    Store {
        src: u8,
        base: u8,
        offset: i64,
        size: u64,
    },
    Branch {
        cond: BranchCond,
        a: u8,
        b: u8,
        target: u32,
    },
    Jump {
        target: u32,
    },
    Call {
        target: u32,
        link: u8,
    },
    JumpReg {
        base: u8,
    },
    Nop,
    Halt,
}

/// Predecodes one instruction.
fn predecode(inst: Inst) -> Op {
    match inst {
        Inst::Alu { op, dst, a, b } => match b {
            Operand::Reg(rb) => {
                Op::AluRR { op, dst: dst.index() as u8, a: a.index() as u8, b: rb.index() as u8 }
            }
            Operand::Imm(i) => {
                Op::AluRI { op, dst: dst.index() as u8, a: a.index() as u8, imm: i as u64 }
            }
        },
        Inst::Fpu { op, dst, a, b } => {
            Op::Fpu { op, dst: dst.index() as u8, a: a.index() as u8, b: b.index() as u8 }
        }
        Inst::MovImm { dst, imm } => Op::MovImm { dst: dst.index() as u8, imm: imm as u64 },
        Inst::Load { dst, base, offset, size, signed } => Op::Load {
            dst: dst.index() as u8,
            base: base.index() as u8,
            offset,
            size: size.bytes(),
            // 0 encodes "no sign extension"; otherwise the shift width
            // for the sign-extending double shift.
            sext_shift: if signed && size.bytes() < 8 { 64 - (size.bytes() as u32 * 8) } else { 0 },
        },
        Inst::Store { src, base, offset, size } => Op::Store {
            src: src.index() as u8,
            base: base.index() as u8,
            offset,
            size: size.bytes(),
        },
        Inst::Branch { cond, a, b, target } => {
            Op::Branch { cond, a: a.index() as u8, b: b.index() as u8, target: target as u32 }
        }
        Inst::Jump { target } => Op::Jump { target: target as u32 },
        Inst::Call { target, link } => Op::Call { target: target as u32, link: link.index() as u8 },
        Inst::JumpReg { base } => Op::JumpReg { base: base.index() as u8 },
        Inst::Hint { .. } | Inst::Nop => Op::Nop,
        Inst::Halt => Op::Halt,
    }
}

/// Computes the static basic-block partition of `program`: block leaders
/// are the entry point, every control-flow target, and every
/// fall-through successor of a control instruction. Returns a per-pc
/// block-id map. Any consistent partition works for SimPoint clustering;
/// this one matches the classic BBV definition without requiring the
/// compiler layer's CFG.
fn block_map(program: &Program) -> Vec<u32> {
    let n = program.len();
    let mut leader = vec![false; n + 1];
    if n > 0 {
        leader[program.entry().min(n)] = true;
    }
    for (pc, inst) in program.insts().iter().enumerate() {
        match *inst {
            Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Call { target, .. } => {
                if target <= n {
                    leader[target] = true;
                }
                if pc < n {
                    leader[pc + 1] = true;
                }
            }
            Inst::JumpReg { .. } | Inst::Halt if pc < n => {
                leader[pc + 1] = true;
            }
            _ => {}
        }
    }
    let mut map = vec![0u32; n];
    let mut block = 0u32;
    let mut started = false;
    for pc in 0..n {
        if leader[pc] {
            if started {
                block += 1;
            }
            started = true;
        }
        map[pc] = block;
    }
    map
}

/// One recorded data access of the functional-warming stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessHint {
    /// The accessing instruction's program counter (word address).
    pub pc: u32,
    /// Accessed byte address.
    pub addr: u64,
    /// Whether the access was a store.
    pub is_store: bool,
}

/// Bounded, chronology-preserving ring of recorded events.
#[derive(Debug, Clone)]
struct Ring<T: Copy> {
    buf: Vec<T>,
    head: usize,
    cap: usize,
}

impl<T: Copy> Ring<T> {
    fn new(cap: usize) -> Ring<T> {
        Ring { buf: Vec::new(), head: 0, cap }
    }

    #[inline]
    fn push(&mut self, v: T) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Contents in chronological order (oldest first).
    fn chronological(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// Microarchitecture-agnostic warm state gathered by functional warming:
/// bounded event streams a detailed core replays into its branch
/// predictor, caches, and prefetchers when resuming from a
/// [`Checkpoint`]. Streams are chronological (oldest first).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarmHints {
    /// Recent conditional-branch outcomes `(pc, taken)`.
    pub branches: Vec<(u32, bool)>,
    /// Recent indirect-jump resolutions `(pc, target)` (BTB training).
    pub indirect_targets: Vec<(u32, u32)>,
    /// Recent data accesses (D-cache tags/LRU and stride-prefetcher
    /// training pairs).
    pub mem_accesses: Vec<MemAccessHint>,
    /// Recent instruction-fetch lines, in 64-byte line units (I-cache
    /// tags/LRU).
    pub fetch_lines: Vec<u64>,
}

/// Errors raised when deserializing a [`Checkpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream ended before the declared payload.
    Truncated,
    /// The magic prefix did not match; not a checkpoint at all.
    BadMagic,
    /// The format version is unknown to this build.
    BadVersion(u32),
    /// The payload checksum did not match: torn or corrupted bytes.
    BadChecksum,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unknown checkpoint version {v}"),
            CheckpointError::BadChecksum => write!(f, "checkpoint payload checksum mismatch"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Checkpoint format magic.
const CKPT_MAGIC: &[u8; 8] = b"LFCKPT\0\0";
/// Checkpoint format version.
const CKPT_VERSION: u32 = 1;

/// A serializable snapshot of a fast-forwarded execution: the exact
/// architectural state (registers, memory image, program counter,
/// instruction count) plus the functional-warming hint streams. A
/// detailed core restored from a checkpoint produces bit-identical
/// architectural results to one that simulated from instruction zero.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Architectural register file at the snapshot.
    pub regs: [u64; NUM_ARCH_REGS],
    /// Full data-memory image at the snapshot.
    pub mem: Memory,
    /// Program counter at the snapshot (word address).
    pub pc: usize,
    /// Dynamic instructions executed up to the snapshot.
    pub insts: u64,
    /// Code fingerprint of the program the snapshot was taken from;
    /// restoring against a different program is a caller bug this field
    /// lets the restore path detect.
    pub code_fingerprint: u64,
    /// Warm microarchitectural hint streams.
    pub hints: WarmHints,
}

/// Little-endian serialization helpers.
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.at.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl Checkpoint {
    /// Serializes the checkpoint to a self-validating byte stream:
    /// `magic | version | payload checksum | payload`. The checksum covers
    /// every payload byte, so truncation and bit rot are both detected by
    /// [`Checkpoint::from_bytes`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.mem.len() + 1024);
        put_u64(&mut payload, self.insts);
        put_u64(&mut payload, self.pc as u64);
        put_u64(&mut payload, self.code_fingerprint);
        for &r in self.regs.iter() {
            put_u64(&mut payload, r);
        }
        put_u64(&mut payload, self.mem.len() as u64);
        payload.extend_from_slice(self.mem.as_bytes());
        put_u64(&mut payload, self.hints.branches.len() as u64);
        for &(pc, taken) in &self.hints.branches {
            put_u32(&mut payload, pc);
            payload.push(taken as u8);
        }
        put_u64(&mut payload, self.hints.indirect_targets.len() as u64);
        for &(pc, target) in &self.hints.indirect_targets {
            put_u32(&mut payload, pc);
            put_u32(&mut payload, target);
        }
        put_u64(&mut payload, self.hints.mem_accesses.len() as u64);
        for a in &self.hints.mem_accesses {
            put_u32(&mut payload, a.pc);
            put_u64(&mut payload, a.addr);
            payload.push(a.is_store as u8);
        }
        put_u64(&mut payload, self.hints.fetch_lines.len() as u64);
        for &line in &self.hints.fetch_lines {
            put_u64(&mut payload, line);
        }

        let mut out = Vec::with_capacity(payload.len() + 24);
        out.extend_from_slice(CKPT_MAGIC);
        put_u32(&mut out, CKPT_VERSION);
        put_u64(&mut out, fnv1a(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Deserializes and validates a checkpoint produced by
    /// [`Checkpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when the stream is truncated, carries
    /// the wrong magic or version, or fails its payload checksum — the
    /// torn/corrupt states a campaign quarantines.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let mut r = Reader { bytes, at: 0 };
        if r.take(8)? != CKPT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version != CKPT_VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let checksum = r.u64()?;
        if fnv1a(&bytes[r.at..]) != checksum {
            return Err(CheckpointError::BadChecksum);
        }
        let insts = r.u64()?;
        let pc = r.u64()? as usize;
        let code_fingerprint = r.u64()?;
        let mut regs = [0u64; NUM_ARCH_REGS];
        for slot in regs.iter_mut() {
            *slot = r.u64()?;
        }
        let mem_len = r.u64()? as usize;
        let mem = Memory::from_bytes(r.take(mem_len)?.to_vec());
        let n_branches = r.u64()? as usize;
        let mut branches = Vec::with_capacity(n_branches.min(BRANCH_RING));
        for _ in 0..n_branches {
            let pc = r.u32()?;
            let taken = r.take(1)?[0] != 0;
            branches.push((pc, taken));
        }
        let n_indirect = r.u64()? as usize;
        let mut indirect_targets = Vec::with_capacity(n_indirect.min(INDIRECT_RING));
        for _ in 0..n_indirect {
            let pc = r.u32()?;
            let target = r.u32()?;
            indirect_targets.push((pc, target));
        }
        let n_mem = r.u64()? as usize;
        let mut mem_accesses = Vec::with_capacity(n_mem.min(MEM_RING));
        for _ in 0..n_mem {
            let pc = r.u32()?;
            let addr = r.u64()?;
            let is_store = r.take(1)?[0] != 0;
            mem_accesses.push(MemAccessHint { pc, addr, is_store });
        }
        let n_fetch = r.u64()? as usize;
        let mut fetch_lines = Vec::with_capacity(n_fetch.min(FETCH_RING));
        for _ in 0..n_fetch {
            fetch_lines.push(r.u64()?);
        }
        Ok(Checkpoint {
            regs,
            mem,
            pc,
            insts,
            code_fingerprint,
            hints: WarmHints { branches, indirect_targets, mem_accesses, fetch_lines },
        })
    }

    /// Checksum over the architectural state, comparable with
    /// [`crate::Emulator::state_checksum`].
    pub fn state_checksum(&self) -> u64 {
        fnv1a_u64(&self.regs) ^ self.mem.checksum()
    }
}

/// The fast functional CPU model: predecoded batch-dispatch execution
/// with inline interval-BBV collection and functional warming.
///
/// # Examples
///
/// ```
/// use lf_isa::{FastTier, Emulator, ProgramBuilder, Memory, reg, AluOp, BranchCond};
///
/// let mut b = ProgramBuilder::new();
/// let top = b.label("top");
/// b.li(reg::x(1), 0);
/// b.li(reg::x(2), 1000);
/// b.bind(top);
/// b.alui(AluOp::Add, reg::x(1), reg::x(1), 1);
/// b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
/// b.halt();
/// let p = b.build()?;
///
/// let mut fast = FastTier::new(&p, Memory::new(64));
/// fast.run_to_inst_count(1_000_000)?;
/// let mut golden = Emulator::new(&p, Memory::new(64));
/// golden.run(1_000_000)?;
/// assert_eq!(fast.state_checksum(), golden.state_checksum());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FastTier<'p> {
    program: &'p Program,
    ops: Vec<Op>,
    block_of: Vec<u32>,
    num_blocks: usize,

    regs: [u64; NUM_ARCH_REGS],
    mem: Memory,
    pc: usize,
    halted: bool,
    insts: u64,
    fault: Option<EmuError>,

    /// Dense per-block execution counts of the current interval.
    cur_counts: Vec<u64>,
    /// Instructions attributed to the current (open) interval.
    cur_interval_insts: u64,
    /// Completed interval vectors, sparse.
    vectors: Vec<HashMap<usize, u64>>,
    /// Data lines (64-byte units) touched at least once so far.
    seen_lines: Vec<bool>,
    /// First-touch data lines in the current (open) interval.
    cur_new_lines: u64,

    branches: Ring<(u32, bool)>,
    indirect: Ring<(u32, u32)>,
    mem_ring: Ring<MemAccessHint>,
    fetch_ring: Ring<u64>,
    last_fetch_line: u64,
}

impl<'p> FastTier<'p> {
    /// Restores a fast tier from a [`Checkpoint`], resuming execution at
    /// the checkpointed instruction count. The warm hint rings restart
    /// empty (the hints describe the pre-checkpoint past; a resumed fast
    /// tier re-accumulates its own).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint was taken from a different program (code
    /// fingerprint mismatch) — restoring state into foreign code is
    /// always a caller bug, never a recoverable condition.
    pub fn from_checkpoint(program: &'p Program, ckpt: &Checkpoint) -> FastTier<'p> {
        assert_eq!(
            ckpt.code_fingerprint,
            program.code_fingerprint(),
            "checkpoint belongs to a different program"
        );
        let mut tier = FastTier::new(program, ckpt.mem.clone());
        tier.regs = ckpt.regs;
        tier.pc = ckpt.pc;
        tier.insts = ckpt.insts;
        tier
    }

    /// Predecodes `program` and prepares a fast tier over `mem`.
    pub fn new(program: &'p Program, mem: Memory) -> FastTier<'p> {
        let ops: Vec<Op> = program.insts().iter().map(|&i| predecode(i)).collect();
        let block_of = block_map(program);
        let num_blocks = block_of.iter().copied().max().map_or(0, |b| b as usize + 1);
        let seen_lines = vec![false; mem.len() / FETCH_LINE_BYTES as usize + 1];
        FastTier {
            program,
            ops,
            block_of,
            num_blocks,
            regs: [0; NUM_ARCH_REGS],
            mem,
            pc: program.entry(),
            halted: false,
            insts: 0,
            fault: None,
            cur_counts: vec![0; num_blocks],
            cur_interval_insts: 0,
            vectors: Vec::new(),
            seen_lines,
            cur_new_lines: 0,
            branches: Ring::new(BRANCH_RING),
            indirect: Ring::new(INDIRECT_RING),
            mem_ring: Ring::new(MEM_RING),
            fetch_ring: Ring::new(FETCH_RING),
            last_fetch_line: u64::MAX,
        }
    }

    /// The architectural register file.
    pub fn regs(&self) -> &[u64; NUM_ARCH_REGS] {
        &self.regs
    }

    /// The data memory image.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// The current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Whether a `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Dynamic instructions executed so far.
    pub fn inst_count(&self) -> u64 {
        self.insts
    }

    /// Checksum of registers plus memory; identical to
    /// [`crate::Emulator::state_checksum`] at the same instruction count.
    pub fn state_checksum(&self) -> u64 {
        fnv1a_u64(&self.regs) ^ self.mem.checksum()
    }

    /// Completed interval basic-block vectors (sparse), ready for
    /// SimPoint projection/clustering. Besides per-block instruction
    /// counts, each vector carries one synthetic dimension
    /// ([`BBV_NEW_LINES_KEY`]) counting scaled first-touch data lines, so
    /// microarchitecturally distinct phases of identical code (cold
    /// working-set growth vs steady state) cluster apart.
    pub fn vectors(&self) -> &[HashMap<usize, u64>] {
        &self.vectors
    }

    /// Number of static basic blocks (the BBV dimensionality).
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Runs until the cumulative instruction count reaches `target` or
    /// the program halts — the batch-dispatch analogue of
    /// [`crate::Emulator::run_to_inst_count`]. Executed instructions
    /// accumulate into the current BBV interval (close it with
    /// [`FastTier::close_interval`]).
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] on PC or memory faults (latched; subsequent
    /// calls keep returning the fault).
    pub fn run_to_inst_count(&mut self, target: u64) -> Result<StepStop, EmuError> {
        if let Some(e) = &self.fault {
            return Err(e.clone());
        }
        self.run_batch(target);
        if let Some(e) = &self.fault {
            return Err(e.clone());
        }
        Ok(if self.halted { StepStop::Halted } else { StepStop::FuelExhausted })
    }

    /// Runs one BBV interval of `interval_len` instructions (or to halt)
    /// and closes it: the interval's block-execution counts are compacted
    /// into a sparse vector appended to [`FastTier::vectors`]. Returns
    /// how the interval ended.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] on PC or memory faults.
    pub fn run_interval(&mut self, interval_len: u64) -> Result<StepStop, EmuError> {
        let stop = self.run_to_inst_count(self.insts + interval_len)?;
        self.close_interval();
        Ok(stop)
    }

    /// Closes the current BBV interval, appending its compacted sparse
    /// vector (a no-op when no instructions executed since the last
    /// close).
    pub fn close_interval(&mut self) {
        if self.cur_interval_insts == 0 {
            return;
        }
        let mut v = HashMap::new();
        for (block, &n) in self.cur_counts.iter().enumerate() {
            if n > 0 {
                v.insert(block, n);
            }
        }
        // Working-set growth rides along as a synthetic dimension: phases
        // that execute identical code but stream new data (cold-miss-heavy
        // warm-up vs steady state) have identical code BBVs, and clustering
        // on code counts alone would merge them. First-touch line counts
        // are a functional-tier-visible proxy that separates them.
        if self.cur_new_lines > 0 {
            v.insert(BBV_NEW_LINES_KEY, self.cur_new_lines * BBV_NEW_LINES_WEIGHT);
        }
        self.vectors.push(v);
        self.cur_counts.iter_mut().for_each(|c| *c = 0);
        self.cur_interval_insts = 0;
        self.cur_new_lines = 0;
    }

    /// Records a data access for working-set tracking: counts the line's
    /// first touch of the whole run toward the current interval.
    #[inline]
    fn note_data_line(&mut self, addr: u64) {
        let line = (addr / FETCH_LINE_BYTES) as usize;
        if let Some(seen) = self.seen_lines.get_mut(line) {
            if !*seen {
                *seen = true;
                self.cur_new_lines += 1;
            }
        }
    }

    /// Snapshots the current state (architectural + warm hint streams)
    /// as a serializable [`Checkpoint`].
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            regs: self.regs,
            mem: self.mem.clone(),
            pc: self.pc,
            insts: self.insts,
            code_fingerprint: self.program.code_fingerprint(),
            hints: WarmHints {
                branches: self.branches.chronological(),
                indirect_targets: self.indirect.chronological(),
                mem_accesses: self.mem_ring.chronological(),
                fetch_lines: self.fetch_ring.chronological(),
            },
        }
    }

    /// The batch-dispatch hot loop. No `Result` per step: memory and PC
    /// faults latch into `self.fault` and break the batch; the caller
    /// surfaces them at the batch boundary.
    fn run_batch(&mut self, target: u64) {
        if self.halted || self.insts >= target {
            return;
        }
        let num_ops = self.ops.len();
        let mut pc = self.pc;
        loop {
            if pc >= num_ops {
                self.fault = Some(EmuError::PcOutOfRange { pc });
                break;
            }
            // Fetch-line warming: one event per line transition, matching
            // the detailed front end's one-lookup-per-line policy.
            let line = (pc as u64 * INST_BYTES) / FETCH_LINE_BYTES;
            if line != self.last_fetch_line {
                self.last_fetch_line = line;
                self.fetch_ring.push(line);
            }
            self.cur_counts[self.block_of[pc] as usize] += 1;
            self.insts += 1;
            self.cur_interval_insts += 1;
            let mut next = pc + 1;
            match self.ops[pc] {
                Op::AluRR { op, dst, a, b } => {
                    let v = eval_alu(op, self.regs[a as usize], self.regs[b as usize]);
                    self.regs[dst as usize] = v;
                    self.regs[0] = 0;
                }
                Op::AluRI { op, dst, a, imm } => {
                    let v = eval_alu(op, self.regs[a as usize], imm);
                    self.regs[dst as usize] = v;
                    self.regs[0] = 0;
                }
                Op::Fpu { op, dst, a, b } => {
                    let v = eval_fpu(op, self.regs[a as usize], self.regs[b as usize]);
                    self.regs[dst as usize] = v;
                    self.regs[0] = 0;
                }
                Op::MovImm { dst, imm } => {
                    self.regs[dst as usize] = imm;
                    self.regs[0] = 0;
                }
                Op::Load { dst, base, offset, size, sext_shift } => {
                    let addr = self.regs[base as usize].wrapping_add(offset as u64);
                    match self.mem.read(addr, size) {
                        Ok(raw) => {
                            let v = if sext_shift == 0 {
                                raw
                            } else {
                                (((raw << sext_shift) as i64) >> sext_shift) as u64
                            };
                            self.regs[dst as usize] = v;
                            self.regs[0] = 0;
                            self.note_data_line(addr);
                            self.mem_ring.push(MemAccessHint {
                                pc: pc as u32,
                                addr,
                                is_store: false,
                            });
                        }
                        Err(e) => {
                            self.fault = Some(EmuError::Mem(e));
                            break;
                        }
                    }
                }
                Op::Store { src, base, offset, size } => {
                    let addr = self.regs[base as usize].wrapping_add(offset as u64);
                    match self.mem.write(addr, size, self.regs[src as usize]) {
                        Ok(()) => {
                            self.note_data_line(addr);
                            self.mem_ring.push(MemAccessHint {
                                pc: pc as u32,
                                addr,
                                is_store: true,
                            });
                        }
                        Err(e) => {
                            self.fault = Some(EmuError::Mem(e));
                            break;
                        }
                    }
                }
                Op::Branch { cond, a, b, target } => {
                    let taken = eval_branch(cond, self.regs[a as usize], self.regs[b as usize]);
                    self.branches.push((pc as u32, taken));
                    if taken {
                        next = target as usize;
                    }
                }
                Op::Jump { target } => next = target as usize,
                Op::Call { target, link } => {
                    self.regs[link as usize] = (pc + 1) as u64;
                    self.regs[0] = 0;
                    next = target as usize;
                }
                Op::JumpReg { base } => {
                    next = self.regs[base as usize] as usize;
                    self.indirect.push((pc as u32, next as u32));
                }
                Op::Nop => {}
                Op::Halt => {
                    // Leave pc on the halt instruction (the break skips the
                    // fall-through advance below).
                    self.halted = true;
                    break;
                }
            }
            pc = next;
            if self.insts >= target {
                break;
            }
        }
        self.pc = pc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::emu::Emulator;
    use crate::inst::{BranchCond, MemSize};
    use crate::reg;

    /// A loopy program with branches, calls, loads/stores, and an
    /// indirect return — every op class the fast tier dispatches.
    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let func = b.label("func");
        let done = b.label("done");
        // x10/x11 for the loop state: RA is x1, so the call link must not
        // alias the counter.
        b.li(reg::x(10), 0); // i
        b.li(reg::x(11), 200); // bound
        b.li(reg::x(4), 0x100); // buffer base
        b.bind(top);
        b.call(func, reg::RA);
        b.alui(AluOp::Add, reg::x(10), reg::x(10), 1);
        b.branch(BranchCond::Lt, reg::x(10), reg::x(11), top);
        b.jump(done);
        b.bind(func);
        b.alui(AluOp::Mul, reg::x(5), reg::x(10), 8);
        b.alu(AluOp::Add, reg::x(5), reg::x(5), reg::x(4));
        b.store(reg::x(10), reg::x(5), 0, MemSize::B8);
        b.load_signed(reg::x(6), reg::x(5), 0, MemSize::B4);
        b.jump_reg(reg::RA);
        b.bind(done);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn matches_emulator_at_every_boundary() {
        let p = mixed_program();
        let mut fast = FastTier::new(&p, Memory::new(0x800));
        let mut emu = Emulator::new(&p, Memory::new(0x800));
        for boundary in [1, 7, 100, 333, 1000, 5000] {
            fast.run_to_inst_count(boundary).unwrap();
            emu.run_to_inst_count(boundary).unwrap();
            assert_eq!(fast.inst_count(), emu.inst_count(), "at boundary {boundary}");
            assert_eq!(fast.pc(), emu.pc(), "at boundary {boundary}");
            assert_eq!(
                fast.state_checksum(),
                emu.state_checksum(),
                "state diverged at boundary {boundary}"
            );
        }
        assert_eq!(fast.is_halted(), emu.is_halted());
    }

    #[test]
    fn interval_vectors_cover_every_instruction() {
        let p = mixed_program();
        let mut fast = FastTier::new(&p, Memory::new(0x800));
        while !fast.is_halted() {
            fast.run_interval(100).unwrap();
        }
        // Block-count mass covers every dynamic instruction; the synthetic
        // working-set dimension rides on top and is excluded.
        let total: u64 = fast
            .vectors()
            .iter()
            .flat_map(|v| v.iter())
            .filter(|(&k, _)| k != BBV_NEW_LINES_KEY)
            .map(|(_, &n)| n)
            .sum();
        assert_eq!(total, fast.inst_count(), "BBV mass equals dynamic instruction count");
        assert!(fast.vectors().len() >= 2, "multiple intervals closed");
        // And the working-set dimension is present: the mixed program
        // touches fresh data lines in its first interval.
        assert!(
            fast.vectors()[0].contains_key(&BBV_NEW_LINES_KEY),
            "first interval records first-touch lines"
        );
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let p = mixed_program();
        let mut fast = FastTier::new(&p, Memory::new(0x800));
        fast.run_to_inst_count(500).unwrap();
        let ckpt = fast.checkpoint();
        assert!(!ckpt.hints.branches.is_empty());
        assert!(!ckpt.hints.mem_accesses.is_empty());
        assert!(!ckpt.hints.indirect_targets.is_empty());
        assert!(!ckpt.hints.fetch_lines.is_empty());
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ckpt, back);
        assert_eq!(back.state_checksum(), fast.state_checksum());
    }

    #[test]
    fn corrupt_and_truncated_checkpoints_are_rejected() {
        let p = mixed_program();
        let mut fast = FastTier::new(&p, Memory::new(0x200));
        fast.run_to_inst_count(100).unwrap();
        let bytes = fast.checkpoint().to_bytes();

        // Truncation at any prefix is detected.
        for cut in [0, 4, 12, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // A flipped payload bit fails the checksum.
        let mut flipped = bytes.clone();
        let at = flipped.len() - 3;
        flipped[at] ^= 0x40;
        assert_eq!(Checkpoint::from_bytes(&flipped), Err(CheckpointError::BadChecksum));
        // Wrong magic.
        let mut magic = bytes.clone();
        magic[0] = b'X';
        assert_eq!(Checkpoint::from_bytes(&magic), Err(CheckpointError::BadMagic));
        // Unknown version.
        let mut vers = bytes;
        vers[8] = 0xEE;
        assert!(matches!(Checkpoint::from_bytes(&vers), Err(CheckpointError::BadVersion(_))));
    }

    #[test]
    fn resuming_from_checkpoint_matches_straight_run() {
        let p = mixed_program();
        // Straight run to 900.
        let mut straight = FastTier::new(&p, Memory::new(0x800));
        straight.run_to_inst_count(900).unwrap();
        // Checkpoint at 400; the snapshot matches a golden emulator
        // paused at the same boundary.
        let mut fast = FastTier::new(&p, Memory::new(0x800));
        fast.run_to_inst_count(400).unwrap();
        let ckpt = fast.checkpoint();
        let mut paused = Emulator::new(&p, Memory::new(0x800));
        paused.run_to_inst_count(400).unwrap();
        assert_eq!(ckpt.pc, paused.pc());
        assert_eq!(ckpt.state_checksum(), paused.state_checksum());
        // A fresh tier restored from the serialized checkpoint resumes
        // to a bit-identical state at 900.
        let restored_ckpt = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        let mut resumed = FastTier::from_checkpoint(&p, &restored_ckpt);
        assert_eq!(resumed.inst_count(), 400);
        resumed.run_to_inst_count(900).unwrap();
        assert_eq!(resumed.inst_count(), straight.inst_count());
        assert_eq!(resumed.pc(), straight.pc());
        assert_eq!(resumed.state_checksum(), straight.state_checksum());
    }

    #[test]
    fn x0_stays_hardwired_zero() {
        let mut b = ProgramBuilder::new();
        b.li(reg::ZERO, 42);
        b.alui(AluOp::Add, reg::x(1), reg::ZERO, 0);
        b.halt();
        let p = b.build().unwrap();
        let mut fast = FastTier::new(&p, Memory::new(16));
        fast.run_to_inst_count(u64::MAX).unwrap();
        assert_eq!(fast.regs()[0], 0);
        assert_eq!(fast.regs()[1], 0);
    }

    #[test]
    fn faults_latch_and_report() {
        let mut b = ProgramBuilder::new();
        b.li(reg::x(1), 1 << 40);
        b.load(reg::x(2), reg::x(1), 0, MemSize::B8);
        b.halt();
        let p = b.build().unwrap();
        let mut fast = FastTier::new(&p, Memory::new(64));
        let e = fast.run_to_inst_count(u64::MAX).unwrap_err();
        assert!(matches!(e, EmuError::Mem(_)));
        // The fault latches: re-running reports it again.
        assert!(fast.run_to_inst_count(u64::MAX).is_err());
    }

    #[test]
    fn ring_wraps_chronologically() {
        let mut r: Ring<u32> = Ring::new(4);
        for i in 0..7 {
            r.push(i);
        }
        assert_eq!(r.chronological(), vec![3, 4, 5, 6]);
    }
}
