//! Functional (golden) emulator.
//!
//! Executes programs sequentially with LoopFrog hints treated as NOPs —
//! exactly the programmer-visible semantics the microarchitecture must
//! preserve (paper §3.2). The timing simulator's architectural results are
//! differential-tested against this model.
//!
//! The emulator also collects an execution profile (per-instruction counts
//! and per-branch taken statistics) used by the compiler's profile-guided
//! loop selection (paper §5.1) and by SimPoint basic-block vectors.

use crate::checksum::fnv1a_u64;
use crate::inst::{AluOp, BranchCond, FpuOp, Inst, MemSize, Operand};
use crate::mem::{MemError, Memory};
use crate::program::Program;
use crate::reg::{Reg, NUM_ARCH_REGS};
use std::fmt;

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A `halt` instruction was executed.
    Halted,
    /// The instruction budget was exhausted before `halt`.
    OutOfFuel,
}

/// Outcome of a step-bounded run ([`Emulator::run_to_inst_count`]).
///
/// Distinct from [`StopReason`] so that exhausting a step budget is never
/// mistaken for a normal halt: lockstep replay treats `FuelExhausted` at a
/// commit boundary as the expected "paused" state, while a fuzzer treats it
/// on a whole-program budget as "reject: did not terminate".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStop {
    /// The step budget ran out before a `halt` executed; the emulator is
    /// paused and can be stepped further.
    FuelExhausted,
    /// A `halt` instruction executed at or before the budget.
    Halted,
}

/// Errors raised during emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The program counter left the program.
    PcOutOfRange {
        /// Faulting program counter.
        pc: usize,
    },
    /// A data memory access faulted.
    Mem(MemError),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
            EmuError::Mem(e) => write!(f, "memory fault: {e}"),
        }
    }
}

impl std::error::Error for EmuError {}

impl From<MemError> for EmuError {
    fn from(e: MemError) -> EmuError {
        EmuError::Mem(e)
    }
}

/// Execution profile collected by the emulator.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Per-static-instruction dynamic execution counts.
    pub exec_count: Vec<u64>,
    /// Per-static-instruction taken counts (for control instructions).
    pub taken_count: Vec<u64>,
}

impl Profile {
    fn new(len: usize) -> Profile {
        Profile { exec_count: vec![0; len], taken_count: vec![0; len] }
    }

    /// Fraction of executions of the branch at `pc` that were taken.
    pub fn taken_ratio(&self, pc: usize) -> f64 {
        if self.exec_count[pc] == 0 {
            0.0
        } else {
            self.taken_count[pc] as f64 / self.exec_count[pc] as f64
        }
    }
}

/// Final outcome of a run.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Why execution stopped.
    pub stop: StopReason,
    /// Dynamic instruction count (including hints and nops).
    pub insts: u64,
    /// Checksum over final registers and memory.
    pub checksum: u64,
}

/// The architectural state and sequential interpreter.
///
/// # Examples
///
/// ```
/// use lf_isa::{Emulator, ProgramBuilder, Memory, reg, AluOp};
///
/// let mut b = ProgramBuilder::new();
/// b.li(reg::x(1), 20);
/// b.alui(AluOp::Add, reg::x(1), reg::x(1), 22);
/// b.halt();
/// let p = b.build().unwrap();
/// let mut emu = Emulator::new(&p, Memory::new(64));
/// emu.run(1000).unwrap();
/// assert_eq!(emu.reg(reg::x(1)), 42);
/// ```
#[derive(Debug, Clone)]
pub struct Emulator<'p> {
    program: &'p Program,
    regs: [u64; NUM_ARCH_REGS],
    mem: Memory,
    pc: usize,
    halted: bool,
    insts: u64,
    profile: Profile,
}

/// Evaluates an integer ALU operation; shared with the timing simulator so
/// both models compute identical results.
pub fn eval_alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                u64::MAX
            } else {
                (a as i64).wrapping_div(b as i64) as u64
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                (a as i64).wrapping_rem(b as i64) as u64
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl((b & 63) as u32),
        AluOp::Srl => a.wrapping_shr((b & 63) as u32),
        AluOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
        AluOp::Seq => (a == b) as u64,
    }
}

/// Evaluates a floating-point operation on raw bit patterns; shared with the
/// timing simulator.
pub fn eval_fpu(op: FpuOp, a: u64, b: u64) -> u64 {
    let fa = f64::from_bits(a);
    let fb = f64::from_bits(b);
    match op {
        FpuOp::FAdd => (fa + fb).to_bits(),
        FpuOp::FSub => (fa - fb).to_bits(),
        FpuOp::FMul => (fa * fb).to_bits(),
        FpuOp::FDiv => (fa / fb).to_bits(),
        FpuOp::FMin => fa.min(fb).to_bits(),
        FpuOp::FMax => fa.max(fb).to_bits(),
        FpuOp::FSqrt => fa.sqrt().to_bits(),
        FpuOp::FLt => (fa < fb) as u64,
        FpuOp::FEq => (fa == fb) as u64,
        FpuOp::CvtIF => ((a as i64) as f64).to_bits(),
        FpuOp::CvtFI => {
            // Truncating, saturating conversion.
            if fa.is_nan() {
                0
            } else {
                (fa as i64) as u64
            }
        }
    }
}

/// Evaluates a branch condition; shared with the timing simulator.
pub fn eval_branch(cond: BranchCond, a: u64, b: u64) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => (a as i64) < (b as i64),
        BranchCond::Ge => (a as i64) >= (b as i64),
        BranchCond::Ltu => a < b,
        BranchCond::Geu => a >= b,
    }
}

/// Sign- or zero-extends a loaded value of `size` bytes.
pub fn extend_load(value: u64, size: MemSize, signed: bool) -> u64 {
    if !signed {
        return value;
    }
    let bits = size.bytes() * 8;
    if bits == 64 {
        value
    } else {
        let shift = 64 - bits;
        (((value << shift) as i64) >> shift) as u64
    }
}

impl<'p> Emulator<'p> {
    /// Creates an emulator over `program` with the given initial memory.
    pub fn new(program: &'p Program, mem: Memory) -> Emulator<'p> {
        Emulator {
            program,
            regs: [0; NUM_ARCH_REGS],
            mem,
            pc: program.entry(),
            halted: false,
            insts: 0,
            profile: Profile::new(program.len()),
        }
    }

    /// Reads an architectural register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes an architectural register (writes to `x0` are ignored).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// The full architectural register file.
    pub fn regs(&self) -> &[u64; NUM_ARCH_REGS] {
        &self.regs
    }

    /// The data memory image.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the data memory image (for pre-run initialization).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Whether a `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Dynamic instructions executed so far.
    pub fn inst_count(&self) -> u64 {
        self.insts
    }

    /// The execution profile collected so far.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Checksum of registers plus memory; identical runs produce identical
    /// checksums.
    pub fn state_checksum(&self) -> u64 {
        fnv1a_u64(&self.regs) ^ self.mem.checksum()
    }

    /// Executes a single instruction, returning its `pc`.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] on PC or memory faults. A halted emulator
    /// returns `Ok(pc)` without advancing.
    pub fn step(&mut self) -> Result<usize, EmuError> {
        if self.halted {
            return Ok(self.pc);
        }
        let pc = self.pc;
        let inst = self.program.fetch(pc).ok_or(EmuError::PcOutOfRange { pc })?;
        self.profile.exec_count[pc] += 1;
        self.insts += 1;
        let mut next = pc + 1;
        match inst {
            Inst::Alu { op, dst, a, b } => {
                let bv = match b {
                    Operand::Reg(r) => self.reg(r),
                    Operand::Imm(i) => i as u64,
                };
                let v = eval_alu(op, self.reg(a), bv);
                self.set_reg(dst, v);
            }
            Inst::Fpu { op, dst, a, b } => {
                let v = eval_fpu(op, self.reg(a), self.reg(b));
                self.set_reg(dst, v);
            }
            Inst::MovImm { dst, imm } => self.set_reg(dst, imm as u64),
            Inst::Load { dst, base, offset, size, signed } => {
                let addr = self.reg(base).wrapping_add(offset as u64);
                let raw = self.mem.read(addr, size.bytes())?;
                self.set_reg(dst, extend_load(raw, size, signed));
            }
            Inst::Store { src, base, offset, size } => {
                let addr = self.reg(base).wrapping_add(offset as u64);
                self.mem.write(addr, size.bytes(), self.reg(src))?;
            }
            Inst::Branch { cond, a, b, target } => {
                if eval_branch(cond, self.reg(a), self.reg(b)) {
                    self.profile.taken_count[pc] += 1;
                    next = target;
                }
            }
            Inst::Jump { target } => {
                self.profile.taken_count[pc] += 1;
                next = target;
            }
            Inst::Call { target, link } => {
                self.profile.taken_count[pc] += 1;
                self.set_reg(link, (pc + 1) as u64);
                next = target;
            }
            Inst::JumpReg { base } => {
                self.profile.taken_count[pc] += 1;
                next = self.reg(base) as usize;
            }
            Inst::Hint { .. } | Inst::Nop => {}
            Inst::Halt => {
                self.halted = true;
                next = pc;
            }
        }
        self.pc = next;
        Ok(pc)
    }

    /// Runs until `halt` or until `fuel` instructions have executed.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] on PC or memory faults.
    pub fn run(&mut self, fuel: u64) -> Result<ExecResult, EmuError> {
        let budget = self.insts + fuel;
        while !self.halted && self.insts < budget {
            self.step()?;
        }
        Ok(ExecResult {
            stop: if self.halted { StopReason::Halted } else { StopReason::OutOfFuel },
            insts: self.insts,
            checksum: self.state_checksum(),
        })
    }

    /// Steps until the cumulative dynamic instruction count reaches
    /// `target` (a step budget, *not* a program counter) or the program
    /// halts, whichever comes first. The two outcomes are reported
    /// distinctly — a bounded run that stops on budget exhaustion is
    /// [`StepStop::FuelExhausted`], never conflated with a genuine
    /// [`StepStop::Halted`] — so callers (the lockstep differential
    /// checker, the fuzzer's non-termination screen) can tell "paused at
    /// the requested boundary" from "program finished early" without
    /// re-inspecting state.
    ///
    /// If the count is already at or past `target`, returns immediately.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] on PC or memory faults.
    pub fn run_to_inst_count(&mut self, target: u64) -> Result<StepStop, EmuError> {
        while !self.halted && self.insts < target {
            self.step()?;
        }
        Ok(if self.halted { StepStop::Halted } else { StepStop::FuelExhausted })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg;

    fn run_program(b: ProgramBuilder, mem_size: usize) -> (Emulator<'static>, ExecResult) {
        let p = Box::leak(Box::new(b.build().unwrap()));
        let mut emu = Emulator::new(p, Memory::new(mem_size));
        let r = emu.run(1_000_000).unwrap();
        (emu, r)
    }

    #[test]
    fn arithmetic_loop_sums() {
        // sum = 0; for i in 0..100 { sum += i }
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.li(reg::x(1), 0); // i
        b.li(reg::x(2), 0); // sum
        b.li(reg::x(3), 100);
        b.bind(top);
        b.alu(AluOp::Add, reg::x(2), reg::x(2), reg::x(1));
        b.alui(AluOp::Add, reg::x(1), reg::x(1), 1);
        b.branch(BranchCond::Lt, reg::x(1), reg::x(3), top);
        b.halt();
        let (emu, r) = run_program(b, 64);
        assert_eq!(emu.reg(reg::x(2)), 4950);
        assert_eq!(r.stop, StopReason::Halted);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let mut b = ProgramBuilder::new();
        b.li(reg::x(1), 0x100);
        b.li(reg::x(2), -7i64);
        b.store(reg::x(2), reg::x(1), 0, MemSize::B4);
        b.load_signed(reg::x(3), reg::x(1), 0, MemSize::B4);
        b.load(reg::x(4), reg::x(1), 0, MemSize::B4);
        b.halt();
        let (emu, _) = run_program(b, 0x200);
        assert_eq!(emu.reg(reg::x(3)) as i64, -7);
        assert_eq!(emu.reg(reg::x(4)), 0xffff_fff9);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new();
        let func = b.label("func");
        let after = b.label("after");
        b.call(func, reg::RA);
        b.bind(after);
        b.halt();
        b.bind(func);
        b.li(reg::x(5), 99);
        b.jump_reg(reg::RA);
        let (emu, _) = run_program(b, 16);
        assert_eq!(emu.reg(reg::x(5)), 99);
        assert!(emu.is_halted());
    }

    #[test]
    fn hints_are_nops_and_do_not_change_state() {
        let mut b = ProgramBuilder::new();
        let cont = b.label("cont");
        b.li(reg::x(1), 5);
        b.detach(cont);
        b.alui(AluOp::Add, reg::x(1), reg::x(1), 1);
        b.reattach(cont);
        b.bind(cont);
        b.sync(cont);
        b.halt();
        let p = b.build().unwrap();
        let mut e1 = Emulator::new(&p, Memory::new(16));
        e1.run(100).unwrap();
        let nohints = p.without_hints();
        let mut e2 = Emulator::new(&nohints, Memory::new(16));
        e2.run(100).unwrap();
        assert_eq!(e1.reg(reg::x(1)), 6);
        assert_eq!(e1.state_checksum(), e2.state_checksum());
    }

    #[test]
    fn fuel_exhaustion_reports_out_of_fuel() {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.bind(top);
        b.jump(top);
        let (_, r) = run_program(b, 16);
        assert_eq!(r.stop, StopReason::OutOfFuel);
    }

    #[test]
    fn step_bounded_run_distinguishes_fuel_from_halt() {
        // sum loop: 3 insts of setup + 3 per iteration + halt.
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.li(reg::x(1), 0);
        b.li(reg::x(3), 4);
        b.bind(top);
        b.alui(AluOp::Add, reg::x(1), reg::x(1), 1);
        b.branch(BranchCond::Lt, reg::x(1), reg::x(3), top);
        b.halt();
        let p = b.build().unwrap();
        let mut emu = Emulator::new(&p, Memory::new(16));
        // Pause mid-loop: budget exhausted, not halted.
        assert_eq!(emu.run_to_inst_count(5).unwrap(), StepStop::FuelExhausted);
        assert_eq!(emu.inst_count(), 5);
        assert!(!emu.is_halted());
        // Re-requesting a past boundary is a no-op.
        assert_eq!(emu.run_to_inst_count(3).unwrap(), StepStop::FuelExhausted);
        assert_eq!(emu.inst_count(), 5);
        // A generous budget runs to the genuine halt.
        assert_eq!(emu.run_to_inst_count(1000).unwrap(), StepStop::Halted);
        assert_eq!(emu.reg(reg::x(1)), 4);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut b = ProgramBuilder::new();
        b.li(reg::ZERO, 42);
        b.alui(AluOp::Add, reg::x(1), reg::ZERO, 0);
        b.halt();
        let (emu, _) = run_program(b, 16);
        assert_eq!(emu.reg(reg::x(1)), 0);
    }

    #[test]
    fn profile_counts_taken_branches() {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.li(reg::x(1), 0);
        b.li(reg::x(2), 4);
        b.bind(top);
        b.alui(AluOp::Add, reg::x(1), reg::x(1), 1);
        b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
        b.halt();
        let (emu, _) = run_program(b, 16);
        // branch at pc=3 executes 4 times, taken 3.
        assert_eq!(emu.profile().exec_count[3], 4);
        assert_eq!(emu.profile().taken_count[3], 3);
        assert!((emu.profile().taken_ratio(3) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn fpu_basic_math() {
        let mut b = ProgramBuilder::new();
        b.li(reg::x(1), 9);
        b.fpu(FpuOp::CvtIF, reg::f(0), reg::x(1), reg::ZERO);
        b.fpu(FpuOp::FSqrt, reg::f(1), reg::f(0), reg::f(0));
        b.fpu(FpuOp::CvtFI, reg::x(2), reg::f(1), reg::ZERO);
        b.halt();
        let (emu, _) = run_program(b, 16);
        assert_eq!(emu.reg(reg::x(2)), 3);
    }
}
