//! A label-resolving program builder.
//!
//! [`ProgramBuilder`] is the assembler front-end used by workload kernels and
//! tests: instructions are appended with symbolic labels for branch targets,
//! and [`ProgramBuilder::build`] resolves them to word addresses.
//!
//! # Examples
//!
//! ```
//! use lf_isa::{ProgramBuilder, reg, AluOp, BranchCond};
//!
//! let mut b = ProgramBuilder::new();
//! let loop_top = b.label("loop");
//! b.li(reg::x(1), 0);
//! b.li(reg::x(2), 10);
//! b.bind(loop_top);
//! b.alui(AluOp::Add, reg::x(1), reg::x(1), 1);
//! b.branch(BranchCond::Lt, reg::x(1), reg::x(2), loop_top);
//! b.halt();
//! let program = b.build().unwrap();
//! assert_eq!(program.len(), 5);
//! ```

use crate::inst::{AluOp, BranchCond, FpuOp, HintKind, Inst, MemSize, Operand, RegionId};
use crate::program::Program;
use crate::reg::Reg;
use std::collections::BTreeMap;
use std::fmt;

/// A symbolic label created by [`ProgramBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors reported by [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced by a branch but never bound to an address.
    UnboundLabel {
        /// Name of the unbound label.
        name: String,
    },
    /// A label was bound more than once.
    ReboundLabel {
        /// Name of the rebound label.
        name: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel { name } => write!(f, "label `{name}` was never bound"),
            BuildError::ReboundLabel { name } => write!(f, "label `{name}` bound twice"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Placeholder target encoding: branch targets referencing unresolved labels
/// store `PLACEHOLDER_BASE + label_id` until `build` patches them.
const PLACEHOLDER_BASE: usize = usize::MAX / 2;

/// Incremental program assembler with symbolic labels.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    names: Vec<String>,
    bound: Vec<Option<usize>>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Current address (index of the next emitted instruction).
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Creates a new, unbound label.
    pub fn label(&mut self, name: &str) -> Label {
        self.names.push(name.to_string());
        self.bound.push(None);
        Label(self.names.len() - 1)
    }

    /// Binds `label` to the current address.
    ///
    /// # Panics
    ///
    /// Panics if the label id is foreign to this builder.
    pub fn bind(&mut self, label: Label) {
        assert!(label.0 < self.bound.len(), "foreign label");
        // Double binding is reported at build time so that kernels can be
        // written in a straight line without interleaved error handling.
        if self.bound[label.0].is_none() {
            self.bound[label.0] = Some(self.insts.len());
        } else {
            self.bound[label.0] = Some(usize::MAX); // poison; caught in build()
        }
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// `dst = op(a, b)` with a register second operand.
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: Reg, b: Reg) {
        self.push(Inst::Alu { op, dst, a, b: Operand::Reg(b) });
    }

    /// `dst = op(a, imm)` with an immediate second operand.
    pub fn alui(&mut self, op: AluOp, dst: Reg, a: Reg, imm: i64) {
        self.push(Inst::Alu { op, dst, a, b: Operand::Imm(imm) });
    }

    /// Floating point `dst = op(a, b)`.
    pub fn fpu(&mut self, op: FpuOp, dst: Reg, a: Reg, b: Reg) {
        self.push(Inst::Fpu { op, dst, a, b });
    }

    /// Load immediate.
    pub fn li(&mut self, dst: Reg, imm: i64) {
        self.push(Inst::MovImm { dst, imm });
    }

    /// Register move (`dst = src`), encoded as `add dst, src, 0`.
    pub fn mv(&mut self, dst: Reg, src: Reg) {
        self.alui(AluOp::Add, dst, src, 0);
    }

    /// Load of `size` bytes, zero-extended.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64, size: MemSize) {
        self.push(Inst::Load { dst, base, offset, size, signed: false });
    }

    /// Load of `size` bytes, sign-extended.
    pub fn load_signed(&mut self, dst: Reg, base: Reg, offset: i64, size: MemSize) {
        self.push(Inst::Load { dst, base, offset, size, signed: true });
    }

    /// Store of `size` bytes.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64, size: MemSize) {
        self.push(Inst::Store { src, base, offset, size });
    }

    /// Conditional branch to `label`.
    pub fn branch(&mut self, cond: BranchCond, a: Reg, b: Reg, label: Label) {
        self.push(Inst::Branch { cond, a, b, target: PLACEHOLDER_BASE + label.0 });
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) {
        self.push(Inst::Jump { target: PLACEHOLDER_BASE + label.0 });
    }

    /// Direct call to `label`, saving the return address in `link`.
    pub fn call(&mut self, label: Label, link: Reg) {
        self.push(Inst::Call { target: PLACEHOLDER_BASE + label.0, link });
    }

    /// Indirect jump through `base` (returns).
    pub fn jump_reg(&mut self, base: Reg) {
        self.push(Inst::JumpReg { base });
    }

    /// Emits a `detach` hint whose region is `continuation`. The region ID is
    /// resolved to the continuation label's address at build time.
    pub fn detach(&mut self, continuation: Label) {
        self.push(Inst::Hint {
            kind: HintKind::Detach,
            region: RegionId(PLACEHOLDER_BASE + continuation.0),
        });
    }

    /// Emits a `reattach` hint for `continuation`'s region.
    pub fn reattach(&mut self, continuation: Label) {
        self.push(Inst::Hint {
            kind: HintKind::Reattach,
            region: RegionId(PLACEHOLDER_BASE + continuation.0),
        });
    }

    /// Emits a `sync` hint for `continuation`'s region.
    pub fn sync(&mut self, continuation: Label) {
        self.push(Inst::Hint {
            kind: HintKind::Sync,
            region: RegionId(PLACEHOLDER_BASE + continuation.0),
        });
    }

    /// Emits a `nop`.
    pub fn nop(&mut self) {
        self.push(Inst::Nop);
    }

    /// Emits `halt`.
    pub fn halt(&mut self) {
        self.push(Inst::Halt);
    }

    fn resolve(&self, raw: usize) -> Result<usize, BuildError> {
        if raw < PLACEHOLDER_BASE {
            return Ok(raw);
        }
        let id = raw - PLACEHOLDER_BASE;
        match self.bound[id] {
            Some(usize::MAX) => Err(BuildError::ReboundLabel { name: self.names[id].clone() }),
            Some(addr) => Ok(addr),
            None => Err(BuildError::UnboundLabel { name: self.names[id].clone() }),
        }
    }

    /// Resolves labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if a referenced label was never bound, or a
    /// label was bound twice.
    pub fn build(self) -> Result<Program, BuildError> {
        let mut insts = self.insts.clone();
        for inst in insts.iter_mut() {
            match inst {
                Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Call { target, .. } => {
                    *target = self.resolve(*target)?;
                }
                Inst::Hint { region, .. } => {
                    region.0 = self.resolve(region.0)?;
                }
                _ => {}
            }
        }
        let mut labels = BTreeMap::new();
        for (id, bound) in self.bound.iter().enumerate() {
            if let Some(addr) = *bound {
                if addr == usize::MAX {
                    return Err(BuildError::ReboundLabel { name: self.names[id].clone() });
                }
                labels.entry(addr).or_insert_with(|| self.names[id].clone());
            }
        }
        Ok(Program::with_labels(insts, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let out = b.label("out");
        b.bind(top);
        b.branch(BranchCond::Eq, reg::x(1), reg::ZERO, out);
        b.jump(top);
        b.bind(out);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Inst::Branch { cond: BranchCond::Eq, a: reg::x(1), b: reg::ZERO, target: 2 })
        );
        assert_eq!(p.fetch(1), Some(Inst::Jump { target: 0 }));
        assert_eq!(p.label_at(2), Some("out"));
    }

    #[test]
    fn hint_regions_resolve_to_continuation_address() {
        let mut b = ProgramBuilder::new();
        let cont = b.label("cont");
        b.detach(cont);
        b.reattach(cont);
        b.bind(cont);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.fetch(0).unwrap().hint(), Some((HintKind::Detach, RegionId(2))));
        assert_eq!(p.fetch(1).unwrap().hint(), Some((HintKind::Reattach, RegionId(2))));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let nowhere = b.label("nowhere");
        b.jump(nowhere);
        assert_eq!(b.build(), Err(BuildError::UnboundLabel { name: "nowhere".into() }));
    }

    #[test]
    fn rebound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.label("l");
        b.bind(l);
        b.nop();
        b.bind(l);
        b.jump(l);
        assert!(matches!(b.build(), Err(BuildError::ReboundLabel { .. })));
    }
}
