//! Architectural state diffing.
//!
//! When a differential harness finds that two executions disagree, a bare
//! checksum mismatch is useless for debugging. This module computes and
//! formats a human-readable diff between two architectural states (register
//! file and/or memory image), used by the `lf-verify` lockstep checker to
//! report exactly *which* registers and bytes diverged at a threadlet
//! commit boundary.

use crate::mem::Memory;
use crate::reg::{NUM_ARCH_REGS, NUM_INT_REGS};
use std::fmt;

/// A single diverging register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegDiff {
    /// Flat register index in `0..NUM_ARCH_REGS`.
    pub index: usize,
    /// Value on the left-hand side (conventionally the golden model).
    pub lhs: u64,
    /// Value on the right-hand side (conventionally the device under test).
    pub rhs: u64,
}

/// A single diverging memory byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemDiff {
    /// Byte address.
    pub addr: u64,
    /// Byte on the left-hand side.
    pub lhs: u8,
    /// Byte on the right-hand side.
    pub rhs: u8,
}

/// A structured diff between two architectural states.
#[derive(Debug, Clone, Default)]
pub struct StateDiff {
    /// Diverging registers, ascending by index.
    pub regs: Vec<RegDiff>,
    /// First diverging memory bytes, ascending by address (capped; see
    /// [`StateDiff::mem_truncated`]).
    pub mem: Vec<MemDiff>,
    /// Whether the memory diff was truncated at the cap.
    pub mem_truncated: bool,
}

/// Cap on reported memory byte diffs; divergence is usually clustered, and
/// a runaway diff would drown the interesting part of the report.
const MEM_DIFF_CAP: usize = 32;

/// The conventional assembly name of flat register index `i`.
fn reg_name(i: usize) -> String {
    if i < NUM_INT_REGS {
        format!("x{i}")
    } else {
        format!("f{}", i - NUM_INT_REGS)
    }
}

impl StateDiff {
    /// Diffs two register files (and optionally two memory images).
    ///
    /// Register slices shorter than [`NUM_ARCH_REGS`] are compared up to
    /// the shorter length; a length mismatch itself is reported as a diff
    /// on the missing indices against zero.
    pub fn compare(lhs_regs: &[u64], rhs_regs: &[u64], mem: Option<(&Memory, &Memory)>) -> Self {
        let mut d = StateDiff::default();
        let n = lhs_regs.len().max(rhs_regs.len()).min(NUM_ARCH_REGS);
        for i in 0..n {
            let l = lhs_regs.get(i).copied().unwrap_or(0);
            let r = rhs_regs.get(i).copied().unwrap_or(0);
            if l != r {
                d.regs.push(RegDiff { index: i, lhs: l, rhs: r });
            }
        }
        if let Some((lm, rm)) = mem {
            let len = lm.len().min(rm.len());
            for a in 0..len as u64 {
                let l = lm.read_u8(a).unwrap_or(0);
                let r = rm.read_u8(a).unwrap_or(0);
                if l != r {
                    if d.mem.len() == MEM_DIFF_CAP {
                        d.mem_truncated = true;
                        break;
                    }
                    d.mem.push(MemDiff { addr: a, lhs: l, rhs: r });
                }
            }
        }
        d
    }

    /// True when the two states were identical.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty() && self.mem.is_empty()
    }
}

impl fmt::Display for StateDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "  (states identical)");
        }
        for r in &self.regs {
            writeln!(f, "  {:>4}: {:#018x} != {:#018x}", reg_name(r.index), r.lhs, r.rhs)?;
        }
        for m in &self.mem {
            writeln!(f, "  [{:#06x}]: {:#04x} != {:#04x}", m.addr, m.lhs, m.rhs)?;
        }
        if self.mem_truncated {
            writeln!(f, "  ... memory diff truncated at {MEM_DIFF_CAP} bytes")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_states_diff_empty() {
        let regs = [1u64, 2, 3];
        let d = StateDiff::compare(&regs, &regs, None);
        assert!(d.is_empty());
    }

    #[test]
    fn register_and_memory_divergence_reported() {
        let a = [0u64, 7, 3];
        let b = [0u64, 8, 3];
        let mut m1 = Memory::new(64);
        let m2 = m1.clone();
        m1.write_u64(8, 0xff).unwrap();
        let d = StateDiff::compare(&a, &b, Some((&m1, &m2)));
        assert_eq!(d.regs.len(), 1);
        assert_eq!(d.regs[0], RegDiff { index: 1, lhs: 7, rhs: 8 });
        assert_eq!(d.mem.len(), 1);
        assert_eq!(d.mem[0].addr, 8);
        let text = d.to_string();
        assert!(text.contains("x1"), "{text}");
    }
}
