//! Byte-addressed data memory image.
//!
//! A flat, bounds-checked byte array. The timing simulator layers caches on
//! top of this image for latency; the image itself always holds the
//! *architectural* contents of memory (speculative data lives in the SSB
//! until threadlet commit).

use std::fmt;

/// Errors raised by memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Access extended past the end of the memory image.
    OutOfBounds {
        /// Faulting byte address.
        addr: u64,
        /// Access size in bytes.
        size: u64,
        /// Size of the memory image.
        limit: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr, size, limit } => {
                write!(
                    f,
                    "memory access of {size} bytes at {addr:#x} exceeds image size {limit:#x}"
                )
            }
        }
    }
}

impl std::error::Error for MemError {}

/// A flat byte-addressed memory image.
///
/// # Examples
///
/// ```
/// use lf_isa::Memory;
///
/// let mut mem = Memory::new(4096);
/// mem.write_u64(16, 0xdead_beef).unwrap();
/// assert_eq!(mem.read_u64(16).unwrap(), 0xdead_beef);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Creates a zero-filled memory image of `size` bytes.
    pub fn new(size: usize) -> Memory {
        Memory { bytes: vec![0; size] }
    }

    /// Creates a memory image from an existing byte vector (checkpoint
    /// restore and snapshot replay).
    pub fn from_bytes(bytes: Vec<u8>) -> Memory {
        Memory { bytes }
    }

    /// Size of the image in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Raw bytes of the image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    fn check(&self, addr: u64, size: u64) -> Result<usize, MemError> {
        let end = addr.checked_add(size);
        match end {
            Some(end) if end <= self.bytes.len() as u64 => Ok(addr as usize),
            _ => Err(MemError::OutOfBounds { addr, size, limit: self.bytes.len() as u64 }),
        }
    }

    /// Reads `size` bytes at `addr`, zero-extended into a `u64` (little
    /// endian).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the access exceeds the image.
    pub fn read(&self, addr: u64, size: u64) -> Result<u64, MemError> {
        debug_assert!(size <= 8);
        let base = self.check(addr, size)?;
        let mut buf = [0u8; 8];
        buf[..size as usize].copy_from_slice(&self.bytes[base..base + size as usize]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes the low `size` bytes of `value` at `addr` (little endian).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the access exceeds the image.
    pub fn write(&mut self, addr: u64, size: u64, value: u64) -> Result<(), MemError> {
        debug_assert!(size <= 8);
        let base = self.check(addr, size)?;
        self.bytes[base..base + size as usize]
            .copy_from_slice(&value.to_le_bytes()[..size as usize]);
        Ok(())
    }

    /// Reads a single byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if `addr` exceeds the image.
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemError> {
        Ok(self.read(addr, 1)? as u8)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the access exceeds the image.
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemError> {
        self.read(addr, 8)
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the access exceeds the image.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), MemError> {
        self.write(addr, 8, value)
    }

    /// Reads an `f64` stored as its little-endian bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the access exceeds the image.
    pub fn read_f64(&self, addr: u64) -> Result<f64, MemError> {
        Ok(f64::from_bits(self.read(addr, 8)?))
    }

    /// Writes an `f64` as its little-endian bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the access exceeds the image.
    pub fn write_f64(&mut self, addr: u64, value: f64) -> Result<(), MemError> {
        self.write(addr, 8, value.to_bits())
    }

    /// FNV-1a checksum over the full image; used by workloads to validate
    /// that speculative and sequential execution produce identical memory.
    pub fn checksum(&self) -> u64 {
        crate::checksum::fnv1a(&self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_sizes() {
        let mut m = Memory::new(64);
        for (size, val) in [(1u64, 0xabu64), (2, 0xbeef), (4, 0xdeadbeef), (8, u64::MAX - 3)] {
            m.write(8, size, val).unwrap();
            assert_eq!(m.read(8, size).unwrap(), val);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new(16);
        m.write(0, 4, 0x0403_0201).unwrap();
        assert_eq!(m.read_u8(0).unwrap(), 1);
        assert_eq!(m.read_u8(3).unwrap(), 4);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut m = Memory::new(8);
        assert!(m.read(8, 1).is_err());
        assert!(m.write(4, 8, 0).is_err());
        assert!(m.read(u64::MAX, 8).is_err());
    }

    #[test]
    fn f64_roundtrip() {
        let mut m = Memory::new(16);
        m.write_f64(0, -1234.5e-3).unwrap();
        assert_eq!(m.read_f64(0).unwrap(), -1234.5e-3);
    }

    #[test]
    fn checksum_changes_with_content() {
        let mut m = Memory::new(32);
        let c0 = m.checksum();
        m.write_u64(0, 1).unwrap();
        assert_ne!(m.checksum(), c0);
    }
}
