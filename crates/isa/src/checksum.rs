//! Small hashing helpers used for state validation.

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over a slice of `u64` values (little-endian byte order).
pub fn fnv1a_u64(values: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        // FNV-1a of "a".
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn u64_matches_bytes() {
        assert_eq!(fnv1a_u64(&[0x0102_0304_0506_0708]), fnv1a(&[8, 7, 6, 5, 4, 3, 2, 1]));
    }
}
