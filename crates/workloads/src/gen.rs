//! Deterministic input-data generators for the kernels.
//!
//! All generators are seeded (`SmallRng`) so every run of every experiment
//! sees identical data.

use lf_isa::Memory;
use lf_stats::rng::SmallRng;

/// A seeded RNG for kernel `name` (stable across runs and platforms).
pub fn rng_for(name: &str) -> SmallRng {
    let seed = lf_isa::checksum::fnv1a(name.as_bytes());
    SmallRng::seed_from_u64(seed)
}

/// Fills `[base, base + count*8)` with random u64 values in `0..bound`.
pub fn fill_u64(mem: &mut Memory, rng: &mut SmallRng, base: u64, count: usize, bound: u64) {
    for i in 0..count as u64 {
        let v = if bound == 0 { rng.random() } else { rng.random_range(0..bound) };
        mem.write_u64(base + i * 8, v).expect("generator within image");
    }
}

/// Fills with random f64 values in `[lo, hi)` (stored as bit patterns).
pub fn fill_f64(mem: &mut Memory, rng: &mut SmallRng, base: u64, count: usize, lo: f64, hi: f64) {
    for i in 0..count as u64 {
        mem.write_f64(base + i * 8, rng.random_range(lo..hi)).expect("generator within image");
    }
}

/// Fills `count` bytes with random values in `0..bound`.
pub fn fill_bytes(mem: &mut Memory, rng: &mut SmallRng, base: u64, count: usize, bound: u8) {
    for i in 0..count as u64 {
        let v: u8 = if bound == 0 { rng.random() } else { rng.random_range(0..bound) };
        mem.write(base + i, 1, v as u64).expect("generator within image");
    }
}

/// Writes a random permutation of `0..count` (times 8, as byte offsets into
/// a u64 array) — an index array for irregular gathers.
pub fn fill_permutation(mem: &mut Memory, rng: &mut SmallRng, base: u64, count: usize) {
    let mut idx: Vec<u64> = (0..count as u64).collect();
    // Fisher-Yates.
    for i in (1..count).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    for (i, v) in idx.iter().enumerate() {
        mem.write_u64(base + i as u64 * 8, v * 8).expect("generator within image");
    }
}

/// Builds a singly linked list threaded randomly through `count` nodes of
/// `node_bytes` each; returns nothing (node 0 is the head; the `next`
/// pointer is the first field, terminated with the sentinel `u64::MAX`).
pub fn fill_linked_list(
    mem: &mut Memory,
    rng: &mut SmallRng,
    base: u64,
    count: usize,
    node_bytes: u64,
) {
    let mut order: Vec<u64> = (1..count as u64).collect();
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut cur = 0u64;
    for &nxt in &order {
        mem.write_u64(base + cur * node_bytes, base + nxt * node_bytes).expect("in image");
        cur = nxt;
    }
    mem.write_u64(base + cur * node_bytes, u64::MAX).expect("in image");
}

/// Builds a CSR-style sparse structure: `rows` rows with `nnz_per_row`
/// column indices each (as byte offsets), written at `col_base`; row `r`'s
/// entries start at `col_base + r*nnz*8`.
pub fn fill_csr_cols(
    mem: &mut Memory,
    rng: &mut SmallRng,
    col_base: u64,
    rows: usize,
    nnz_per_row: usize,
    num_cols: usize,
) {
    for r in 0..rows as u64 {
        for k in 0..nnz_per_row as u64 {
            let col = rng.random_range(0..num_cols as u64);
            mem.write_u64(col_base + (r * nnz_per_row as u64 + k) * 8, col * 8).expect("in image");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_rng_per_name() {
        let mut a = rng_for("k");
        let mut b = rng_for("k");
        let mut c = rng_for("other");
        let (x, y, z): (u64, u64, u64) = (a.random(), b.random(), c.random());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut mem = Memory::new(1024);
        let mut rng = rng_for("perm");
        fill_permutation(&mut mem, &mut rng, 0, 64);
        let mut seen = [false; 64];
        for i in 0..64 {
            let v = mem.read_u64(i * 8).unwrap() / 8;
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn linked_list_visits_every_node_once() {
        let mut mem = Memory::new(64 * 16);
        let mut rng = rng_for("list");
        fill_linked_list(&mut mem, &mut rng, 0, 64, 16);
        let mut cur = 0u64;
        let mut visited = 0;
        while cur != u64::MAX {
            visited += 1;
            assert!(visited <= 64);
            cur = mem.read_u64(cur).unwrap();
        }
        assert_eq!(visited, 64);
    }

    #[test]
    fn csr_cols_in_range() {
        let mut mem = Memory::new(8192);
        let mut rng = rng_for("csr");
        fill_csr_cols(&mut mem, &mut rng, 0, 16, 8, 100);
        for i in 0..16 * 8 {
            let v = mem.read_u64(i * 8).unwrap();
            assert!(v < 100 * 8 && v.is_multiple_of(8));
        }
    }
}
