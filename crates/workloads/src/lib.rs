//! # lf-workloads — synthetic SPEC-analog benchmark kernels
//!
//! The paper evaluates LoopFrog on SPEC CPU 2006 and CPU 2017; those
//! binaries cannot ship with this reproduction, so this crate provides a
//! suite of synthetic kernels, each mirroring the *loop structure and
//! bottleneck class* of a named SPEC benchmark (see each kernel's
//! `spec_analog`). Kernels are built hint-free; the `lf-compiler` pass adds
//! hints, exactly as the paper's LLVM pass annotates source loops.
//!
//! Every kernel carries the bottleneck [`Category`] the paper's §6.4
//! analysis attributes speedups to, so Table 2 can be regenerated.
//!
//! # Examples
//!
//! ```
//! use lf_workloads::{all, Scale};
//!
//! let suite = all(Scale::Smoke);
//! assert!(suite.len() >= 20);
//! let w = suite.iter().find(|w| w.name == "stencil_blur").unwrap();
//! assert_eq!(w.spec_analog, "538.imagick_r");
//! let result = w.run_reference().unwrap();
//! assert!(result.insts > 1_000);
//! ```

#![warn(missing_docs)]

pub mod gen;
mod kernels;

use lf_isa::{Emulator, ExecResult, Memory, Program};

/// Which SPEC suite a kernel stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// SPEC CPU 2006 analog.
    Cpu2006,
    /// SPEC CPU 2017 analog.
    Cpu2017,
}

/// The dominant bottleneck class of a kernel (paper §6.4, Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// True parallelism: memory-level parallelism across iterations.
    MemParallelism,
    /// True parallelism: cutting control dependencies.
    ControlDep,
    /// True parallelism: cutting long dependency chains.
    DepChains,
    /// Prefetching side effects: faster branch-condition computation.
    BranchPrefetch,
    /// Prefetching side effects: data value delivery.
    DataPrefetch,
    /// Not expected to speed up (serial, low-trip, saturated, or oversized
    /// loops; paper §6.4.3).
    NoSpeedup,
}

/// Simulation scale: how much dynamic work each kernel performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs for unit/integration tests (tens of thousands of
    /// dynamic instructions).
    Smoke,
    /// Evaluation inputs for the benchmark harness (hundreds of thousands
    /// of dynamic instructions; run in release builds).
    Eval,
    /// Full campaign inputs (millions of dynamic instructions per kernel):
    /// the scale the tiered simulation path exists for. Detailed-only runs
    /// at this scale are slow by design; use `--tier sampled`.
    Full,
}

impl Scale {
    /// Picks an element count by scale. `Full` derives its count from the
    /// eval count so kernels need only specify two sizes.
    pub fn elems(self, smoke: usize, eval: usize) -> usize {
        match self {
            Scale::Smoke => smoke,
            Scale::Eval => eval,
            Scale::Full => eval * 8,
        }
    }
}

/// A benchmark kernel: a hint-free program plus its input memory image.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Kernel name (stable identifier).
    pub name: &'static str,
    /// Which suite the analog belongs to.
    pub suite: Suite,
    /// The SPEC benchmark whose hot-loop structure this kernel mirrors.
    pub spec_analog: &'static str,
    /// Expected dominant speedup/bottleneck category.
    pub category: Category,
    /// One-line description of the loop structure.
    pub description: &'static str,
    /// Whether the mirrored source loop sits inside an OpenMP parallel
    /// region in the original benchmark (paper §6.7 generality analysis).
    pub in_openmp_region: bool,
    /// The scale this instance was built at (part of a run's identity for
    /// the experiment engine's deduplication fingerprints).
    pub scale: Scale,
    /// The kernel program, without hints.
    pub program: Program,
    /// Initial memory image.
    pub mem: Memory,
}

impl Workload {
    /// Runs the kernel on the golden emulator, returning its result.
    ///
    /// # Errors
    ///
    /// Returns [`lf_isa::EmuError`] if the kernel faults (a kernel bug).
    pub fn run_reference(&self) -> Result<ExecResult, lf_isa::EmuError> {
        let mut emu = Emulator::new(&self.program, self.mem.clone());
        emu.run(200_000_000)
    }

    /// Runs the reference emulator to completion and returns it (for
    /// profiles and final state).
    ///
    /// # Errors
    ///
    /// Returns [`lf_isa::EmuError`] if the kernel faults.
    pub fn reference_emulator(&self) -> Result<Emulator<'_>, lf_isa::EmuError> {
        let mut emu = Emulator::new(&self.program, self.mem.clone());
        emu.run(200_000_000)?;
        Ok(emu)
    }
}

/// Builds the full suite at the given scale.
pub fn all(scale: Scale) -> Vec<Workload> {
    kernels::all(scale)
}

/// Builds the SPEC CPU 2017 analog subset.
pub fn suite17(scale: Scale) -> Vec<Workload> {
    all(scale).into_iter().filter(|w| w.suite == Suite::Cpu2017).collect()
}

/// Builds the SPEC CPU 2006 analog subset.
pub fn suite06(scale: Scale) -> Vec<Workload> {
    all(scale).into_iter().filter(|w| w.suite == Suite::Cpu2006).collect()
}

/// Builds a single kernel by name.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    all(scale).into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_halts_and_is_deterministic() {
        for w in all(Scale::Smoke) {
            let r1 = w.run_reference().unwrap_or_else(|e| panic!("{} faulted: {e}", w.name));
            assert_eq!(r1.stop, lf_isa::StopReason::Halted, "{} did not halt", w.name);
            let r2 = w.run_reference().unwrap();
            assert_eq!(r1.checksum, r2.checksum, "{} is nondeterministic", w.name);
            assert!(r1.insts > 1_000, "{} too small ({} insts)", w.name, r1.insts);
            assert!(r1.insts < 3_000_000, "{} too large for smoke ({} insts)", w.name, r1.insts);
        }
    }

    #[test]
    fn names_are_unique() {
        let suite = all(Scale::Smoke);
        let mut names: Vec<_> = suite.iter().map(|w| w.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn both_suites_are_represented() {
        let suite = all(Scale::Smoke);
        assert!(suite.iter().filter(|w| w.suite == Suite::Cpu2017).count() >= 12);
        assert!(suite.iter().filter(|w| w.suite == Suite::Cpu2006).count() >= 8);
    }

    #[test]
    fn category_mix_covers_table_2() {
        let suite = all(Scale::Smoke);
        for cat in [
            Category::MemParallelism,
            Category::ControlDep,
            Category::DepChains,
            Category::BranchPrefetch,
            Category::DataPrefetch,
            Category::NoSpeedup,
        ] {
            assert!(suite.iter().any(|w| w.category == cat), "no kernel in category {cat:?}");
        }
    }

    #[test]
    fn eval_scale_is_larger() {
        let s = by_name("stencil_blur", Scale::Smoke).unwrap().run_reference().unwrap();
        let e = by_name("stencil_blur", Scale::Eval).unwrap().run_reference().unwrap();
        assert!(e.insts > s.insts * 2);
    }

    #[test]
    fn some_kernels_are_in_openmp_regions() {
        let suite = all(Scale::Smoke);
        assert!(suite.iter().any(|w| w.in_openmp_region));
        assert!(suite.iter().any(|w| !w.in_openmp_region));
    }
}
