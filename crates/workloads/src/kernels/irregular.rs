//! Pointer- and index-chasing memory kernels.

use crate::gen;
use crate::{Category, Scale, Suite, Workload};
use lf_isa::{reg, AluOp, BranchCond, MemSize, Memory, ProgramBuilder};

/// 520.omnetpp_r analog: discrete-event processing — per event, an indirect
/// load of the handler record followed by a data-dependent dispatch branch.
/// The paper's second-biggest winner, driven by branch-condition prefetch.
pub fn event_queue(scale: Scale) -> Workload {
    let n = scale.elems(600, 6_000);
    let idx = 0x1_0000i64; // permutation: event → record offset
    let rec = idx + n as i64 * 8; // records (kind, payload): 16 B each
    let out = rec + n as i64 * 16 + 64;
    let mem_size = (out as usize + n * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let kind1 = b.label("kind1");
    let join = b.label("join");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), n as i64 * 8);
    b.bind(top);
    b.load(reg::x(3), reg::x(1), idx, MemSize::B8); // record offset (×8)
    b.alui(AluOp::Sll, reg::x(3), reg::x(3), 1); // ×16
    b.load(reg::x(4), reg::x(3), rec, MemSize::B8); // kind
    b.load(reg::x(5), reg::x(3), rec + 8, MemSize::B8); // payload
    b.alui(AluOp::And, reg::x(6), reg::x(4), 1);
    b.branch(BranchCond::Ne, reg::x(6), reg::ZERO, kind1);
    b.alui(AluOp::Mul, reg::x(5), reg::x(5), 3); // timer event
    b.jump(join);
    b.bind(kind1);
    b.alui(AluOp::Add, reg::x(5), reg::x(5), 0x55); // message event
    b.alui(AluOp::Xor, reg::x(5), reg::x(5), 0x0f);
    b.bind(join);
    b.store(reg::x(5), reg::x(1), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("event_queue");
    gen::fill_permutation(&mut mem, &mut rng, idx as u64, n);
    gen::fill_u64(&mut mem, &mut rng, rec as u64, n * 2, 1 << 30);
    Workload {
        scale,
        name: "event_queue",
        suite: Suite::Cpu2017,
        spec_analog: "520.omnetpp_r",
        category: Category::BranchPrefetch,
        description: "event dispatch with data-dependent branches",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 523.xalancbmk_r analog: DOM-like node processing — a permutation walk
/// gathering node payloads through an index array (cache-missing loads).
pub fn dom_tree_walk(scale: Scale) -> Workload {
    let n = scale.elems(700, 7_000);
    let idx = 0x1_0000i64;
    let nodes = idx + n as i64 * 8;
    let out = nodes + n as i64 * 8 + 64;
    let mem_size = (out as usize + n * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), n as i64 * 8);
    b.bind(top);
    b.load(reg::x(3), reg::x(1), idx, MemSize::B8);
    b.load(reg::x(4), reg::x(3), nodes, MemSize::B8); // indirect gather
    b.alui(AluOp::Mul, reg::x(4), reg::x(4), 5);
    b.alui(AluOp::Xor, reg::x(4), reg::x(4), 0x3c3c);
    b.store(reg::x(4), reg::x(1), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("dom_tree_walk");
    gen::fill_permutation(&mut mem, &mut rng, idx as u64, n);
    gen::fill_u64(&mut mem, &mut rng, nodes as u64, n, 0);
    Workload {
        scale,
        name: "dom_tree_walk",
        suite: Suite::Cpu2017,
        spec_analog: "523.xalancbmk_r",
        category: Category::MemParallelism,
        description: "indirect gather over tree-node payloads",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 505.mcf_r analog: network-simplex arc scanning — per edge, gather the
/// endpoints' potentials and compute the reduced cost.
pub fn graph_relax(scale: Scale) -> Workload {
    let edges = scale.elems(500, 5_000);
    let nodes = 256usize;
    let srcs = 0x1_0000i64;
    let dsts = srcs + edges as i64 * 8;
    let w = dsts + edges as i64 * 8;
    let pot = w + edges as i64 * 8;
    let out = pot + nodes as i64 * 8 + 64;
    let mem_size = (out as usize + edges * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), edges as i64 * 8);
    b.bind(top);
    b.load(reg::x(3), reg::x(1), srcs, MemSize::B8); // src node offset
    b.load(reg::x(4), reg::x(1), dsts, MemSize::B8); // dst node offset
    b.load(reg::x(5), reg::x(1), w, MemSize::B8);
    b.load(reg::x(6), reg::x(3), pot, MemSize::B8);
    b.load(reg::x(7), reg::x(4), pot, MemSize::B8);
    b.alu(AluOp::Sub, reg::x(8), reg::x(6), reg::x(7));
    b.alu(AluOp::Add, reg::x(8), reg::x(8), reg::x(5)); // reduced cost
    b.store(reg::x(8), reg::x(1), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, edges);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("graph_relax");
    for base in [srcs, dsts] {
        for i in 0..edges as u64 {
            let node: u64 = rng.random_range(0..nodes as u64);
            mem.write_u64(base as u64 + i * 8, node * 8).unwrap();
        }
    }
    gen::fill_u64(&mut mem, &mut rng, w as u64, edges, 1 << 12);
    gen::fill_u64(&mut mem, &mut rng, pot as u64, nodes, 1 << 12);
    Workload {
        scale,
        name: "graph_relax",
        suite: Suite::Cpu2017,
        spec_analog: "505.mcf_r",
        category: Category::MemParallelism,
        description: "reduced-cost computation over graph edges",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 511.povray_r analog: per-ray marching with a data-dependent inner trip
/// count (bounded while-loop sampling a density field). Failed speculation
/// still warms the cache — the paper's data-prefetch class.
pub fn ray_march(scale: Scale) -> Workload {
    let rays = scale.elems(260, 2_600);
    let field = 0x1_0000i64;
    let field_elems = 2048usize;
    let out = field + field_elems as i64 * 8;
    let mem_size = (out as usize + rays * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let march = b.label("march");
    let done = b.label("done");
    b.li(reg::x(1), 0); // ray index (byte offset)
    b.li(reg::x(2), rays as i64 * 8);
    b.li(reg::x(9), (field_elems as i64 - 1) * 8); // field mask base
    b.bind(top);
    // Per-ray state: position x4 (derived from ray id), accumulator x5,
    // step counter x6.
    b.alui(AluOp::Mul, reg::x(4), reg::x(1), 37);
    b.li(reg::x(5), 0);
    b.li(reg::x(6), 8);
    b.bind(march);
    b.alu(AluOp::And, reg::x(7), reg::x(4), reg::x(9));
    b.alui(AluOp::And, reg::x(7), reg::x(7), !7); // align to 8
    b.load(reg::x(8), reg::x(7), field, MemSize::B8);
    b.alu(AluOp::Add, reg::x(5), reg::x(5), reg::x(8));
    b.alui(AluOp::Add, reg::x(4), reg::x(4), 264); // advance along ray
    b.alui(AluOp::Sub, reg::x(6), reg::x(6), 1);
    // Early out on dense sample (threshold), else bounded steps.
    b.alui(AluOp::Sltu, reg::x(10), reg::x(8), 0x6000_0000);
    b.branch(BranchCond::Eq, reg::x(10), reg::ZERO, done);
    b.branch(BranchCond::Ne, reg::x(6), reg::ZERO, march);
    b.bind(done);
    b.store(reg::x(5), reg::x(1), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, rays);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("ray_march");
    gen::fill_u64(&mut mem, &mut rng, field as u64, field_elems, 1 << 31);
    Workload {
        scale,
        name: "ray_march",
        suite: Suite::Cpu2017,
        spec_analog: "511.povray_r",
        category: Category::DataPrefetch,
        description: "bounded ray marching with data-dependent exit",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 462.libquantum analog (CPU 2006): quantum gate application — per
/// amplitude, a strided partner access selected by an index-bit test
/// (predictable branch, abundant memory-level parallelism).
pub fn quantum_gate(scale: Scale) -> Workload {
    let n = scale.elems(8_192, 32_768); // power of two; exceeds the L1D
    let amp = 0x1_0000i64;
    let out = amp + n as i64 * 8;
    let mem_size = (out as usize + n * 8 + 64).next_power_of_two();
    let mask = 4096i64; // target qubit: bit 9 of the element index (×8)

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let flip = b.label("flip");
    let join = b.label("join");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), n as i64 * 8);
    b.bind(top);
    b.alui(AluOp::And, reg::x(3), reg::x(1), mask);
    b.branch(BranchCond::Ne, reg::x(3), reg::ZERO, flip);
    b.load(reg::x(4), reg::x(1), amp, MemSize::B8); // identity lane
    b.jump(join);
    b.bind(flip);
    b.alui(AluOp::Xor, reg::x(5), reg::x(1), mask);
    b.load(reg::x(4), reg::x(5), amp, MemSize::B8); // partner amplitude
    b.alui(AluOp::Xor, reg::x(4), reg::x(4), 0x5a5a);
    b.bind(join);
    b.store(reg::x(4), reg::x(1), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("quantum_gate");
    gen::fill_u64(&mut mem, &mut rng, amp as u64, n, 0);
    Workload {
        scale,
        name: "quantum_gate",
        suite: Suite::Cpu2006,
        spec_analog: "462.libquantum",
        category: Category::MemParallelism,
        description: "gate application with partner-index accesses",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 429.mcf analog (CPU 2006): a serial linked-list traversal — the next
/// pointer is a through-memory loop-carried dependence, so LoopFrog cannot
/// legally split the iteration (§6.4.3's DoACROSS class).
pub fn pointer_chase(scale: Scale) -> Workload {
    let n = scale.elems(900, 9_000);
    let node_bytes = 16u64;
    let list = 0x1_0000i64;
    let out = list + (n as u64 * node_bytes) as i64 + 64;
    let mem_size = (out as usize + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let done = b.label("done");
    b.li(reg::x(1), list); // current node pointer
    b.li(reg::x(5), 0); // checksum accumulator
    b.li(reg::x(6), -1i64); // sentinel
    b.bind(top);
    b.load(reg::x(3), reg::x(1), 8, MemSize::B8); // payload
    b.alu(AluOp::Add, reg::x(5), reg::x(5), reg::x(3));
    b.load(reg::x(1), reg::x(1), 0, MemSize::B8); // next (serial LCD)
    b.branch(BranchCond::Ne, reg::x(1), reg::x(6), top);
    b.bind(done);
    b.li(reg::x(7), out);
    b.store(reg::x(5), reg::x(7), 0, MemSize::B8);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("pointer_chase");
    gen::fill_linked_list(&mut mem, &mut rng, list as u64, n, node_bytes);
    for i in 0..n as u64 {
        mem.write_u64(list as u64 + i * node_bytes + 8, i.wrapping_mul(0x9e37) | 1).unwrap();
    }
    Workload {
        scale,
        name: "pointer_chase",
        suite: Suite::Cpu2006,
        spec_analog: "429.mcf",
        category: Category::NoSpeedup,
        description: "serial linked-list traversal (memory LCD)",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}
