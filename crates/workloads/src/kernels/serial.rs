//! Kernels the paper's §6.4.3 classes as unprofitable: serial dependence
//! chains, tiny bodies, or low trip counts.

use crate::gen;
use crate::{Category, Scale, Suite, Workload};
use lf_isa::{reg, AluOp, BranchCond, MemSize, Memory, ProgramBuilder};

/// 557.xz_r analog: run-length encoding — the output cursor advances by a
/// data-dependent amount each iteration, a register LCD computed in the
/// body, so no legal detach/reattach boundary exists.
pub fn compress_rle(scale: Scale) -> Workload {
    let n = scale.elems(800, 8_000);
    let src = 0x1_0000i64;
    let dst = src + n as i64 * 8 + 64;
    let mem_size = (dst as usize + 2 * n * 8 + 128).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let literal = b.label("literal");
    let advance = b.label("advance");
    b.li(reg::x(1), 0); // input cursor
    b.li(reg::x(2), n as i64 * 8);
    b.li(reg::x(10), dst); // output cursor (serial LCD)
    b.bind(top);
    b.load(reg::x(3), reg::x(1), src, MemSize::B8);
    b.alui(AluOp::And, reg::x(4), reg::x(3), 7);
    b.branch(BranchCond::Ne, reg::x(4), reg::ZERO, literal);
    // Run: emit one marker word (output advances by 8).
    b.store(reg::x(3), reg::x(10), 0, MemSize::B8);
    b.alui(AluOp::Add, reg::x(10), reg::x(10), 8);
    b.jump(advance);
    b.bind(literal);
    // Literal: emit two words (output advances by 16).
    b.store(reg::x(4), reg::x(10), 0, MemSize::B8);
    b.store(reg::x(3), reg::x(10), 8, MemSize::B8);
    b.alui(AluOp::Add, reg::x(10), reg::x(10), 16);
    b.bind(advance);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, dst, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("compress_rle");
    gen::fill_u64(&mut mem, &mut rng, src as u64, n, 0);
    Workload {
        scale,
        name: "compress_rle",
        suite: Suite::Cpu2017,
        spec_analog: "557.xz_r",
        category: Category::NoSpeedup,
        description: "RLE with data-dependent output cursor",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 531.deepsjeng_r analog: position evaluation with very low trip counts —
/// an inner 4-iteration scan per position whose result is a reduction.
pub fn chess_eval(scale: Scale) -> Workload {
    let positions = scale.elems(300, 3_000);
    let feat = 0x1_0000i64; // 4 features per position
    let out = feat + positions as i64 * 32 + 64;
    let mem_size = (out as usize + positions * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let inner = b.label("inner");
    b.li(reg::x(1), 0); // position offset (stride 32)
    b.li(reg::x(2), positions as i64 * 32);
    b.li(reg::x(11), 0); // output offset
    b.bind(top);
    // Inner low-trip scan: score = Σ w_k·f_k over 4 features.
    b.li(reg::x(4), 0); // k byte offset
    b.li(reg::x(5), 32);
    b.li(reg::x(6), 0); // score accumulator (reduction)
    b.alu(AluOp::Add, reg::x(7), reg::x(1), reg::x(4));
    b.bind(inner);
    b.load(reg::x(8), reg::x(7), feat, MemSize::B8);
    b.alui(AluOp::Mul, reg::x(8), reg::x(8), 7);
    b.alu(AluOp::Add, reg::x(6), reg::x(6), reg::x(8));
    b.alui(AluOp::Add, reg::x(7), reg::x(7), 8);
    b.alui(AluOp::Add, reg::x(4), reg::x(4), 8);
    b.branch(BranchCond::Lt, reg::x(4), reg::x(5), inner);
    b.store(reg::x(6), reg::x(11), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(11), reg::x(11), 8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 32);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, positions);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("chess_eval");
    gen::fill_u64(&mut mem, &mut rng, feat as u64, positions * 4, 1 << 12);
    Workload {
        scale,
        name: "chess_eval",
        suite: Suite::Cpu2017,
        spec_analog: "531.deepsjeng_r",
        category: Category::NoSpeedup,
        description: "low-trip inner feature scan per position",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 541.leela_r analog: Monte-Carlo playout steps — a tiny loop body whose
/// PRNG state is a serial register LCD.
pub fn mc_playout(scale: Scale) -> Workload {
    let n = scale.elems(2_500, 25_000);
    let out = 0x1_0000i64;
    let hist_slots = 256i64;
    let mem_size = (out as usize + hist_slots as usize * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(1), 0); // step counter
    b.li(reg::x(2), n as i64);
    b.li(reg::x(3), 0x12345);
    b.li(reg::x(9), (hist_slots - 1) * 8);
    b.bind(top);
    // xorshift PRNG: serial LCD through x3.
    b.alui(AluOp::Sll, reg::x(4), reg::x(3), 13);
    b.alu(AluOp::Xor, reg::x(3), reg::x(3), reg::x(4));
    b.alui(AluOp::Srl, reg::x(4), reg::x(3), 7);
    b.alu(AluOp::Xor, reg::x(3), reg::x(3), reg::x(4));
    b.alu(AluOp::And, reg::x(5), reg::x(3), reg::x(9));
    b.load(reg::x(6), reg::x(5), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(6), reg::x(6), 1);
    b.store(reg::x(6), reg::x(5), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 1);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, hist_slots as usize);
    b.halt();

    let mem = Memory::new(mem_size);
    Workload {
        scale,
        name: "mc_playout",
        suite: Suite::Cpu2017,
        spec_analog: "541.leela_r",
        category: Category::NoSpeedup,
        description: "PRNG-driven histogram (serial register LCD)",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 473.astar analog (CPU 2006): binary-heap sift-down — short,
/// data-dependent pointer walks with cross-iteration memory dependences.
pub fn astar_heap(scale: Scale) -> Workload {
    let ops = scale.elems(220, 2_200);
    let heap_elems = 255i64;
    let heap = 0x1_0000i64;
    let keys = heap + (heap_elems + 1) * 8;
    let mem_size = (keys as usize + ops * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let sift = b.label("sift");
    let have_child = b.label("have_child");
    let next_op = b.label("next_op");
    b.li(reg::x(1), 0); // op index (byte offset)
    b.li(reg::x(2), ops as i64 * 8);
    b.li(reg::x(9), heap_elems * 8);
    b.bind(top);
    // Replace the root with the next key, then sift down.
    b.load(reg::x(3), reg::x(1), keys, MemSize::B8);
    b.li(reg::x(4), 8); // current node slot (1-based, byte offset)
    b.store(reg::x(3), reg::x(4), heap, MemSize::B8);
    b.bind(sift);
    b.alui(AluOp::Sll, reg::x(5), reg::x(4), 1); // left child offset
    b.branch(BranchCond::Geu, reg::x(5), reg::x(9), next_op);
    b.load(reg::x(6), reg::x(5), heap, MemSize::B8); // left value
    b.load(reg::x(7), reg::x(5), heap + 8, MemSize::B8); // right value
    b.branch(BranchCond::Geu, reg::x(7), reg::x(6), have_child);
    b.alui(AluOp::Add, reg::x(5), reg::x(5), 8); // right is smaller
    b.alui(AluOp::Add, reg::x(6), reg::x(7), 0);
    b.bind(have_child);
    b.load(reg::x(8), reg::x(4), heap, MemSize::B8); // current value
    b.branch(BranchCond::Geu, reg::x(6), reg::x(8), next_op);
    b.store(reg::x(6), reg::x(4), heap, MemSize::B8); // swap
    b.store(reg::x(8), reg::x(5), heap, MemSize::B8);
    b.alui(AluOp::Add, reg::x(4), reg::x(5), 0);
    b.jump(sift);
    b.bind(next_op);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, heap, heap_elems as usize);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("astar_heap");
    gen::fill_u64(&mut mem, &mut rng, heap as u64, heap_elems as usize + 1, 1 << 30);
    gen::fill_u64(&mut mem, &mut rng, keys as u64, ops, 1 << 30);
    Workload {
        scale,
        name: "astar_heap",
        suite: Suite::Cpu2006,
        spec_analog: "473.astar",
        category: Category::NoSpeedup,
        description: "heap sift-down with cross-iteration memory deps",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}
