//! Kernel constructors, grouped by loop character.
//!
//! - [`regular`]: dense array/FP sweeps (imagick, bwaves, nab, milc, …)
//! - [`irregular`]: pointer/index-chasing memory loops (omnetpp, mcf, …)
//! - [`control`]: branch-dominated loops (gcc, perlbench, gobmk, …)
//! - [`serial`]: loops the paper expects no speedup from (xz, leela, …)

pub mod control;
pub mod extra;
pub mod irregular;
pub mod regular;
pub mod serial;

use crate::{Scale, Workload};
use lf_isa::{reg, AluOp, BranchCond, MemSize, ProgramBuilder};

/// Appends a sequential checksum epilogue: a serial reduction over the
/// kernel's output array, stored to a fixed scratch address. Real programs
/// spend much of their time outside parallelizable loops (the paper's
/// whole-program numbers include those regions); the reduction's
/// loop-carried accumulator makes this region legally unhintable.
pub(crate) fn checksum_epilogue(b: &mut ProgramBuilder, out_addr: i64, elems: usize) {
    let eloop = b.label("cksum");
    b.li(reg::x(24), 0);
    b.li(reg::x(25), elems as i64 * 8);
    b.li(reg::x(27), 0);
    b.bind(eloop);
    b.load(reg::x(26), reg::x(24), out_addr, MemSize::B8);
    b.alu(AluOp::Add, reg::x(27), reg::x(27), reg::x(26));
    b.alui(AluOp::Mul, reg::x(27), reg::x(27), 31);
    b.alui(AluOp::Xor, reg::x(27), reg::x(27), 0x1d);
    b.alui(AluOp::Mul, reg::x(27), reg::x(27), 127);
    b.alui(AluOp::Add, reg::x(24), reg::x(24), 8);
    b.branch(BranchCond::Lt, reg::x(24), reg::x(25), eloop);
    b.li(reg::x(28), 0x100);
    b.store(reg::x(27), reg::x(28), 0, MemSize::B8);
}

/// Builds the complete suite.
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![
        // --- SPEC CPU 2017 analogs ---
        regular::stencil_blur(scale),
        regular::wave_update(scale),
        regular::md_force(scale),
        regular::motion_sad(scale),
        regular::fotonik_fdtd(scale),
        regular::particle_dense(scale),
        regular::fluid_lbm(scale),
        irregular::event_queue(scale),
        irregular::dom_tree_walk(scale),
        irregular::graph_relax(scale),
        irregular::ray_march(scale),
        control::ir_constfold(scale),
        control::hash_lookup(scale),
        control::exchange2_perm(scale),
        serial::compress_rle(scale),
        serial::chess_eval(scale),
        serial::mc_playout(scale),
        extra::cactus_bssn(scale),
        // --- SPEC CPU 2006 analogs ---
        regular::milc_su3(scale),
        regular::h264_me(scale),
        regular::sphinx_gauss(scale),
        irregular::quantum_gate(scale),
        irregular::pointer_chase(scale),
        control::hmmer_viterbi(scale),
        control::bzip_bwt(scale),
        control::gobmk_patterns(scale),
        serial::astar_heap(scale),
        extra::soplex_pricing(scale),
        extra::gems_fdtd(scale),
        extra::povray_noise(scale),
        extra::perl_scan(scale),
        extra::deal_assembly(scale),
    ]
}
