//! Dense array and floating-point sweep kernels.

use crate::gen;
use crate::{Category, Scale, Suite, Workload};
use lf_isa::{reg, AluOp, BranchCond, FpuOp, MemSize, Memory, ProgramBuilder};

/// 538.imagick_r analog: a 1D convolution sweep (`out[i] = (in[i-1] +
/// 2·in[i] + in[i+1]) · k`), the shape of ImageMagick's separable blur
/// inner loop. Iterations are fully independent with a few cache-missing
/// loads each — the paper's biggest winner.
pub fn stencil_blur(scale: Scale) -> Workload {
    let n = scale.elems(1200, 12_000);
    let src = 0x1_0000i64;
    let dst = src + (n as i64 + 2) * 8;
    let mem_size = (dst as usize + (n + 2) * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(1), 8); // i (byte offset), starts at element 1
    b.li(reg::x(2), (n as i64 + 1) * 8);
    b.bind(top);
    b.load(reg::x(3), reg::x(1), src - 8, MemSize::B8);
    b.load(reg::x(4), reg::x(1), src, MemSize::B8);
    b.load(reg::x(5), reg::x(1), src + 8, MemSize::B8);
    b.alui(AluOp::Sll, reg::x(4), reg::x(4), 1);
    b.alu(AluOp::Add, reg::x(3), reg::x(3), reg::x(4));
    b.alu(AluOp::Add, reg::x(3), reg::x(3), reg::x(5));
    b.alui(AluOp::Mul, reg::x(3), reg::x(3), 11);
    b.alui(AluOp::Srl, reg::x(3), reg::x(3), 2);
    b.store(reg::x(3), reg::x(1), dst, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, dst, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("stencil_blur");
    gen::fill_u64(&mut mem, &mut rng, src as u64, n + 2, 1 << 20);
    Workload {
        scale,
        name: "stencil_blur",
        suite: Suite::Cpu2017,
        spec_analog: "538.imagick_r",
        category: Category::MemParallelism,
        description: "independent 1D convolution sweep",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 503.bwaves_r analog: an FP wave-propagation stencil with a multi-operation
/// dependent chain per element (`u' = c0·u + c1·(uL + uR)` refined twice).
pub fn wave_update(scale: Scale) -> Workload {
    let n = scale.elems(900, 9_000);
    let src = 0x1_0000i64;
    let dst = src + (n as i64 + 2) * 8;
    let mem_size = (dst as usize + (n + 2) * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(3), 0);
    b.fpu(FpuOp::CvtIF, reg::f(8), reg::x(3), reg::ZERO); // f8 = 0.0
    b.li(reg::x(3), 3);
    b.fpu(FpuOp::CvtIF, reg::f(9), reg::x(3), reg::ZERO);
    b.li(reg::x(3), 7);
    b.fpu(FpuOp::CvtIF, reg::f(10), reg::x(3), reg::ZERO);
    b.fpu(FpuOp::FDiv, reg::f(9), reg::f(9), reg::f(10)); // c0 = 3/7
    b.li(reg::x(1), 8);
    b.li(reg::x(2), (n as i64 + 1) * 8);
    b.bind(top);
    b.load(reg::f(0), reg::x(1), src - 8, MemSize::B8);
    b.load(reg::f(1), reg::x(1), src, MemSize::B8);
    b.load(reg::f(2), reg::x(1), src + 8, MemSize::B8);
    b.fpu(FpuOp::FAdd, reg::f(3), reg::f(0), reg::f(2));
    b.fpu(FpuOp::FMul, reg::f(3), reg::f(3), reg::f(9));
    b.fpu(FpuOp::FAdd, reg::f(3), reg::f(3), reg::f(1));
    b.fpu(FpuOp::FMul, reg::f(4), reg::f(3), reg::f(9)); // dependent refine
    b.fpu(FpuOp::FAdd, reg::f(4), reg::f(4), reg::f(3));
    b.fpu(FpuOp::FMul, reg::f(4), reg::f(4), reg::f(9));
    b.store(reg::f(4), reg::x(1), dst, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, dst, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("wave_update");
    gen::fill_f64(&mut mem, &mut rng, src as u64, n + 2, -1.0, 1.0);
    Workload {
        scale,
        name: "wave_update",
        suite: Suite::Cpu2017,
        spec_analog: "503.bwaves_r",
        category: Category::DepChains,
        description: "FP stencil with dependent multiply chains",
        in_openmp_region: true,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 544.nab_r analog: molecular-mechanics pairwise force evaluation with a
/// divide + square-root chain per particle.
pub fn md_force(scale: Scale) -> Workload {
    let n = scale.elems(500, 5_000);
    let xs = 0x1_0000i64;
    let fs = xs + n as i64 * 8;
    let mem_size = (fs as usize + n * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(3), 1);
    b.fpu(FpuOp::CvtIF, reg::f(8), reg::x(3), reg::ZERO); // 1.0
    b.li(reg::x(3), 100);
    b.fpu(FpuOp::CvtIF, reg::f(9), reg::x(3), reg::ZERO); // softening
    b.li(reg::x(1), 0);
    b.li(reg::x(2), n as i64 * 8);
    b.bind(top);
    b.load(reg::f(0), reg::x(1), xs, MemSize::B8);
    b.fpu(FpuOp::FMul, reg::f(1), reg::f(0), reg::f(0)); // r²
    b.fpu(FpuOp::FAdd, reg::f(1), reg::f(1), reg::f(9));
    b.fpu(FpuOp::FSqrt, reg::f(2), reg::f(1), reg::f(1));
    b.fpu(FpuOp::FDiv, reg::f(3), reg::f(8), reg::f(2)); // 1/r
    b.fpu(FpuOp::FMul, reg::f(4), reg::f(3), reg::f(0));
    b.store(reg::f(4), reg::x(1), fs, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, fs, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("md_force");
    gen::fill_f64(&mut mem, &mut rng, xs as u64, n, -8.0, 8.0);
    Workload {
        scale,
        name: "md_force",
        suite: Suite::Cpu2017,
        spec_analog: "544.nab_r",
        category: Category::DepChains,
        description: "pairwise force with sqrt/divide chain",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 525.x264_r analog: motion-estimation sum-of-absolute-differences over
/// 8-byte blocks (unrolled accumulation per candidate block).
pub fn motion_sad(scale: Scale) -> Workload {
    let blocks = scale.elems(400, 4_000);
    let cur = 0x1_0000i64;
    let ref_ = cur + blocks as i64 * 8 + 64;
    let out = ref_ + blocks as i64 * 8 + 64;
    let mem_size = (out as usize + blocks * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), blocks as i64 * 8);
    b.bind(top);
    // Unrolled 2×4-byte absolute differences.
    b.load(reg::x(3), reg::x(1), cur, MemSize::B4);
    b.load(reg::x(4), reg::x(1), ref_, MemSize::B4);
    b.alu(AluOp::Sub, reg::x(5), reg::x(3), reg::x(4));
    b.alui(AluOp::Sra, reg::x(6), reg::x(5), 63);
    b.alu(AluOp::Xor, reg::x(5), reg::x(5), reg::x(6));
    b.alu(AluOp::Sub, reg::x(5), reg::x(5), reg::x(6)); // |a-b|
    b.load(reg::x(3), reg::x(1), cur + 4, MemSize::B4);
    b.load(reg::x(4), reg::x(1), ref_ + 4, MemSize::B4);
    b.alu(AluOp::Sub, reg::x(7), reg::x(3), reg::x(4));
    b.alui(AluOp::Sra, reg::x(6), reg::x(7), 63);
    b.alu(AluOp::Xor, reg::x(7), reg::x(7), reg::x(6));
    b.alu(AluOp::Sub, reg::x(7), reg::x(7), reg::x(6));
    b.alu(AluOp::Add, reg::x(5), reg::x(5), reg::x(7));
    b.store(reg::x(5), reg::x(1), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, blocks);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("motion_sad");
    gen::fill_u64(&mut mem, &mut rng, cur as u64, blocks, 0);
    gen::fill_u64(&mut mem, &mut rng, ref_ as u64, blocks, 0);
    Workload {
        scale,
        name: "motion_sad",
        suite: Suite::Cpu2017,
        spec_analog: "525.x264_r",
        category: Category::DepChains,
        description: "per-block SAD with unrolled accumulation",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 549.fotonik3d_r analog: an FDTD field update (`E[i] += c·(H[i] −
/// H[i−1])`) — reads one field, updates another, fully independent.
pub fn fotonik_fdtd(scale: Scale) -> Workload {
    let n = scale.elems(1100, 11_000);
    let e = 0x1_0000i64;
    let h = e + (n as i64 + 1) * 8;
    let mem_size = (h as usize + (n + 1) * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(3), 5);
    b.fpu(FpuOp::CvtIF, reg::f(9), reg::x(3), reg::ZERO);
    b.li(reg::x(3), 16);
    b.fpu(FpuOp::CvtIF, reg::f(10), reg::x(3), reg::ZERO);
    b.fpu(FpuOp::FDiv, reg::f(9), reg::f(9), reg::f(10)); // c = 5/16
    b.li(reg::x(1), 8);
    b.li(reg::x(2), n as i64 * 8);
    b.bind(top);
    b.load(reg::f(0), reg::x(1), h, MemSize::B8);
    b.load(reg::f(1), reg::x(1), h - 8, MemSize::B8);
    b.fpu(FpuOp::FSub, reg::f(2), reg::f(0), reg::f(1));
    b.fpu(FpuOp::FMul, reg::f(2), reg::f(2), reg::f(9));
    b.load(reg::f(3), reg::x(1), e, MemSize::B8);
    b.fpu(FpuOp::FAdd, reg::f(3), reg::f(3), reg::f(2));
    b.store(reg::f(3), reg::x(1), e, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, e, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("fotonik_fdtd");
    gen::fill_f64(&mut mem, &mut rng, e as u64, n + 1, -1.0, 1.0);
    gen::fill_f64(&mut mem, &mut rng, h as u64, n + 1, -1.0, 1.0);
    Workload {
        scale,
        name: "fotonik_fdtd",
        suite: Suite::Cpu2017,
        spec_analog: "549.fotonik3d_r",
        category: Category::MemParallelism,
        description: "FDTD field update sweep",
        in_openmp_region: true,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 508.namd_r analog: dense multiply-accumulate with abundant ILP — the
/// baseline core already saturates, so LoopFrog adds little (§6.4.3).
pub fn particle_dense(scale: Scale) -> Workload {
    let n = scale.elems(700, 7_000);
    let a = 0x1_0000i64;
    let bb = a + n as i64 * 8;
    let c = bb + n as i64 * 8;
    let out = c + n as i64 * 8;
    let mem_size = (out as usize + n * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), n as i64 * 8);
    b.bind(top);
    b.load(reg::f(0), reg::x(1), a, MemSize::B8);
    b.load(reg::f(1), reg::x(1), bb, MemSize::B8);
    b.load(reg::f(2), reg::x(1), c, MemSize::B8);
    b.fpu(FpuOp::FMul, reg::f(3), reg::f(0), reg::f(1));
    b.fpu(FpuOp::FMul, reg::f(4), reg::f(1), reg::f(2));
    b.fpu(FpuOp::FAdd, reg::f(5), reg::f(3), reg::f(4));
    b.store(reg::f(5), reg::x(1), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("particle_dense");
    for base in [a, bb, c] {
        gen::fill_f64(&mut mem, &mut rng, base as u64, n, -2.0, 2.0);
    }
    Workload {
        scale,
        name: "particle_dense",
        suite: Suite::Cpu2017,
        spec_analog: "508.namd_r",
        category: Category::NoSpeedup,
        description: "high-ILP dense FMA sweep (already saturated)",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 519.lbm_r analog: a lattice-Boltzmann-style cell update with a very
/// large per-iteration body scattering stores across many lines — the
/// "extremely large loop" class of §6.4.3.
pub fn fluid_lbm(scale: Scale) -> Workload {
    let cells = scale.elems(60, 600);
    let lanes = 10i64; // distribution components per cell
    let grid = 0x2_0000i64;
    let out = grid + cells as i64 * lanes * 8 + 4096;
    let mem_size = (out as usize + cells * lanes as usize * 8 + 4096).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(1), 0); // cell byte offset (stride lanes*8)
    b.li(reg::x(2), cells as i64 * lanes * 8);
    b.bind(top);
    // Load all lanes, compute a relaxation toward their mean, store all.
    for k in 0..lanes {
        b.load(reg::x((3 + k) as usize % 28 + 3), reg::x(1), grid + k * 8, MemSize::B8);
    }
    // Sum lanes into x20.
    b.li(reg::x(20), 0);
    for k in 0..lanes {
        b.alu(AluOp::Add, reg::x(20), reg::x(20), reg::x((3 + k) as usize % 28 + 3));
    }
    b.alui(AluOp::Div, reg::x(20), reg::x(20), lanes);
    for k in 0..lanes {
        let r = (3 + k) as usize % 28 + 3;
        b.alu(AluOp::Add, reg::x(21), reg::x(r), reg::x(20));
        b.alui(AluOp::Srl, reg::x(21), reg::x(21), 1);
        b.store(reg::x(21), reg::x(1), out + k * 8, MemSize::B8);
    }
    b.alui(AluOp::Add, reg::x(1), reg::x(1), lanes * 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, cells * lanes as usize);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("fluid_lbm");
    gen::fill_u64(&mut mem, &mut rng, grid as u64, cells * lanes as usize, 1 << 16);
    Workload {
        scale,
        name: "fluid_lbm",
        suite: Suite::Cpu2017,
        spec_analog: "519.lbm_r",
        category: Category::NoSpeedup,
        description: "very large per-cell update body",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 433.milc analog (CPU 2006): SU(3)-style small matrix–vector products per
/// lattice site; independent FP work inside an OpenMP-parallel region in
/// the original.
pub fn milc_su3(scale: Scale) -> Workload {
    let sites = scale.elems(350, 3_500);
    let m = 0x1_0000i64; // per-site 4 matrix coefficients
    let v = m + sites as i64 * 32;
    let out = v + sites as i64 * 16;
    let mem_size = (out as usize + sites * 16 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(1), 0); // site index scaled ×32 for m
    b.li(reg::x(2), sites as i64 * 32);
    b.bind(top);
    b.load(reg::f(0), reg::x(1), m, MemSize::B8);
    b.load(reg::f(1), reg::x(1), m + 8, MemSize::B8);
    b.load(reg::f(2), reg::x(1), m + 16, MemSize::B8);
    b.load(reg::f(3), reg::x(1), m + 24, MemSize::B8);
    b.alui(AluOp::Srl, reg::x(3), reg::x(1), 1); // ×16 offset for v/out
    b.load(reg::f(4), reg::x(3), v, MemSize::B8);
    b.load(reg::f(5), reg::x(3), v + 8, MemSize::B8);
    b.fpu(FpuOp::FMul, reg::f(6), reg::f(0), reg::f(4));
    b.fpu(FpuOp::FMul, reg::f(7), reg::f(1), reg::f(5));
    b.fpu(FpuOp::FAdd, reg::f(6), reg::f(6), reg::f(7));
    b.fpu(FpuOp::FMul, reg::f(7), reg::f(2), reg::f(4));
    b.fpu(FpuOp::FMul, reg::f(11), reg::f(3), reg::f(5));
    b.fpu(FpuOp::FAdd, reg::f(7), reg::f(7), reg::f(11));
    b.store(reg::f(6), reg::x(3), out, MemSize::B8);
    b.store(reg::f(7), reg::x(3), out + 8, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 32);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, sites * 2);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("milc_su3");
    gen::fill_f64(&mut mem, &mut rng, m as u64, sites * 4, -1.0, 1.0);
    gen::fill_f64(&mut mem, &mut rng, v as u64, sites * 2, -1.0, 1.0);
    Workload {
        scale,
        name: "milc_su3",
        suite: Suite::Cpu2006,
        spec_analog: "433.milc",
        category: Category::MemParallelism,
        description: "per-site small matrix-vector products",
        in_openmp_region: true,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 464.h264ref analog (CPU 2006): half-pel interpolation over pixel rows —
/// integer averaging with independent iterations.
pub fn h264_me(scale: Scale) -> Workload {
    let n = scale.elems(900, 9_000);
    let src = 0x1_0000i64;
    let dst = src + (n as i64 + 4) * 8;
    let mem_size = (dst as usize + (n + 4) * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), n as i64 * 8);
    b.bind(top);
    b.load(reg::x(3), reg::x(1), src, MemSize::B8);
    b.load(reg::x(4), reg::x(1), src + 8, MemSize::B8);
    b.load(reg::x(5), reg::x(1), src + 16, MemSize::B8);
    b.alu(AluOp::Add, reg::x(6), reg::x(3), reg::x(5));
    b.alui(AluOp::Mul, reg::x(7), reg::x(4), 6);
    b.alu(AluOp::Add, reg::x(6), reg::x(6), reg::x(7));
    b.alui(AluOp::Add, reg::x(6), reg::x(6), 4);
    b.alui(AluOp::Srl, reg::x(6), reg::x(6), 3);
    b.store(reg::x(6), reg::x(1), dst, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, dst, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("h264_me");
    gen::fill_u64(&mut mem, &mut rng, src as u64, n + 4, 256);
    Workload {
        scale,
        name: "h264_me",
        suite: Suite::Cpu2006,
        spec_analog: "464.h264ref",
        category: Category::MemParallelism,
        description: "half-pel interpolation over pixel rows",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 482.sphinx3 analog (CPU 2006): Gaussian-density partial terms
/// (`out[i] = (x[i]−mean[i])² · var[i]`) — FP chain per component.
pub fn sphinx_gauss(scale: Scale) -> Workload {
    let n = scale.elems(700, 7_000);
    let x = 0x1_0000i64;
    let mean = x + n as i64 * 8;
    let var = mean + n as i64 * 8;
    let out = var + n as i64 * 8;
    let mem_size = (out as usize + n * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), n as i64 * 8);
    b.bind(top);
    b.load(reg::f(0), reg::x(1), x, MemSize::B8);
    b.load(reg::f(1), reg::x(1), mean, MemSize::B8);
    b.load(reg::f(2), reg::x(1), var, MemSize::B8);
    b.fpu(FpuOp::FSub, reg::f(3), reg::f(0), reg::f(1));
    b.fpu(FpuOp::FMul, reg::f(3), reg::f(3), reg::f(3));
    b.fpu(FpuOp::FMul, reg::f(3), reg::f(3), reg::f(2));
    b.store(reg::f(3), reg::x(1), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("sphinx_gauss");
    gen::fill_f64(&mut mem, &mut rng, x as u64, n, -4.0, 4.0);
    gen::fill_f64(&mut mem, &mut rng, mean as u64, n, -4.0, 4.0);
    gen::fill_f64(&mut mem, &mut rng, var as u64, n, 0.1, 2.0);
    Workload {
        scale,
        name: "sphinx_gauss",
        suite: Suite::Cpu2006,
        spec_analog: "482.sphinx3",
        category: Category::DepChains,
        description: "Gaussian density partial terms",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}
