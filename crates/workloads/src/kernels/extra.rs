//! Additional SPEC analogs, rounding out the CPU 2006 side of the suite.

use crate::gen;
use crate::{Category, Scale, Suite, Workload};
use lf_isa::{reg, AluOp, BranchCond, FpuOp, MemSize, Memory, ProgramBuilder};

/// 450.soplex analog (CPU 2006): simplex pricing — a CSR-style sparse
/// column scan with indirect loads of the price vector.
pub fn soplex_pricing(scale: Scale) -> Workload {
    let rows = scale.elems(160, 1_600);
    let nnz = 4usize;
    let cols = 512usize;
    let colidx = 0x1_0000i64; // rows×nnz column byte-offsets
    let coef = colidx + (rows * nnz) as i64 * 8;
    let price = coef + (rows * nnz) as i64 * 8;
    let out = price + cols as i64 * 8 + 64;
    let mem_size = (out as usize + rows * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(1), 0); // row (stride nnz*8 in colidx/coef)
    b.li(reg::x(2), (rows * nnz) as i64 * 8);
    b.li(reg::x(11), 0); // output offset
    b.bind(top);
    // Unrolled scan of the row's nnz entries.
    b.li(reg::x(8), 0);
    for k in 0..nnz as i64 {
        b.load(reg::x(3), reg::x(1), colidx + k * 8, MemSize::B8);
        b.load(reg::x(4), reg::x(1), coef + k * 8, MemSize::B8);
        b.load(reg::x(5), reg::x(3), price, MemSize::B8); // indirect
        b.alu(AluOp::Mul, reg::x(5), reg::x(5), reg::x(4));
        b.alu(AluOp::Add, reg::x(8), reg::x(8), reg::x(5));
    }
    b.store(reg::x(8), reg::x(11), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(11), reg::x(11), 8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), nnz as i64 * 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, rows);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("soplex_pricing");
    gen::fill_csr_cols(&mut mem, &mut rng, colidx as u64, rows, nnz, cols);
    gen::fill_u64(&mut mem, &mut rng, coef as u64, rows * nnz, 1 << 10);
    gen::fill_u64(&mut mem, &mut rng, price as u64, cols, 1 << 12);
    Workload {
        scale,
        name: "soplex_pricing",
        suite: Suite::Cpu2006,
        spec_analog: "450.soplex",
        category: Category::MemParallelism,
        description: "sparse pricing scan with indirect gathers",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 459.GemsFDTD analog (CPU 2006): a three-field FP FDTD update.
pub fn gems_fdtd(scale: Scale) -> Workload {
    let n = scale.elems(700, 7_000);
    let ex = 0x1_0000i64;
    let hy = ex + (n as i64 + 2) * 8;
    let hz = hy + (n as i64 + 2) * 8;
    let mem_size = (hz as usize + (n + 2) * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(3), 3);
    b.fpu(FpuOp::CvtIF, reg::f(9), reg::x(3), reg::ZERO);
    b.li(reg::x(3), 32);
    b.fpu(FpuOp::CvtIF, reg::f(10), reg::x(3), reg::ZERO);
    b.fpu(FpuOp::FDiv, reg::f(9), reg::f(9), reg::f(10)); // dt/dx
    b.li(reg::x(1), 8);
    b.li(reg::x(2), n as i64 * 8);
    b.bind(top);
    b.load(reg::f(0), reg::x(1), hy, MemSize::B8);
    b.load(reg::f(1), reg::x(1), hy - 8, MemSize::B8);
    b.load(reg::f(2), reg::x(1), hz, MemSize::B8);
    b.load(reg::f(3), reg::x(1), hz - 8, MemSize::B8);
    b.fpu(FpuOp::FSub, reg::f(4), reg::f(0), reg::f(1));
    b.fpu(FpuOp::FSub, reg::f(5), reg::f(2), reg::f(3));
    b.fpu(FpuOp::FSub, reg::f(4), reg::f(4), reg::f(5));
    b.fpu(FpuOp::FMul, reg::f(4), reg::f(4), reg::f(9));
    b.load(reg::f(6), reg::x(1), ex, MemSize::B8);
    b.fpu(FpuOp::FAdd, reg::f(6), reg::f(6), reg::f(4));
    b.store(reg::f(6), reg::x(1), ex, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, ex, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("gems_fdtd");
    for base in [ex, hy, hz] {
        gen::fill_f64(&mut mem, &mut rng, base as u64, n + 2, -1.0, 1.0);
    }
    Workload {
        scale,
        name: "gems_fdtd",
        suite: Suite::Cpu2006,
        spec_analog: "459.GemsFDTD",
        category: Category::MemParallelism,
        description: "three-field FDTD update",
        in_openmp_region: true,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 453.povray analog (CPU 2006): gradient-noise evaluation — a hash-driven
/// gather feeding an interpolation chain (prefetch-side-effect class).
pub fn povray_noise(scale: Scale) -> Workload {
    let n = scale.elems(400, 4_000);
    let grad = 0x1_0000i64; // 1,024-entry gradient table
    let table = 1024i64;
    let out = grad + table * 8;
    let mem_size = (out as usize + n * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), n as i64);
    b.li(reg::x(9), (table - 1) * 8);
    b.li(reg::x(11), 0); // output offset
    b.bind(top);
    // Two hashed gathers + integer lerp by the fractional part.
    b.alui(AluOp::Mul, reg::x(3), reg::x(1), 0x27d4_eb2f);
    b.alui(AluOp::Srl, reg::x(4), reg::x(3), 9);
    b.alu(AluOp::And, reg::x(4), reg::x(4), reg::x(9));
    b.load(reg::x(5), reg::x(4), grad, MemSize::B8);
    b.alui(AluOp::Add, reg::x(4), reg::x(4), 8);
    b.alu(AluOp::And, reg::x(4), reg::x(4), reg::x(9));
    b.load(reg::x(6), reg::x(4), grad, MemSize::B8);
    b.alui(AluOp::And, reg::x(7), reg::x(3), 0xff); // fraction
    b.alu(AluOp::Sub, reg::x(8), reg::x(6), reg::x(5));
    b.alu(AluOp::Mul, reg::x(8), reg::x(8), reg::x(7));
    b.alui(AluOp::Sra, reg::x(8), reg::x(8), 8);
    b.alu(AluOp::Add, reg::x(8), reg::x(8), reg::x(5));
    b.store(reg::x(8), reg::x(11), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(11), reg::x(11), 8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 1);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("povray_noise");
    gen::fill_u64(&mut mem, &mut rng, grad as u64, table as usize, 1 << 16);
    Workload {
        scale,
        name: "povray_noise",
        suite: Suite::Cpu2006,
        spec_analog: "453.povray",
        category: Category::DataPrefetch,
        description: "hash-gather noise with interpolation chain",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 400.perlbench analog (CPU 2006): per-string byte-class scanning — each
/// string runs a short data-dependent scan (outer loop hintable, inner
/// serial), like the interpreter's token matcher.
pub fn perl_scan(scale: Scale) -> Workload {
    let strings = scale.elems(220, 2_200);
    let bytes_per = 16u64;
    let data = 0x1_0000i64;
    let out = data + (strings as u64 * bytes_per) as i64 + 64;
    let mem_size = (out as usize + strings * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let scan = b.label("scan");
    let done = b.label("done");
    b.li(reg::x(1), 0); // string base offset (stride 16)
    b.li(reg::x(2), strings as i64 * bytes_per as i64);
    b.li(reg::x(11), 0); // output offset
    b.bind(top);
    b.li(reg::x(4), 0); // byte cursor
    b.li(reg::x(5), 0); // token class accumulator
    b.bind(scan);
    b.alu(AluOp::Add, reg::x(6), reg::x(1), reg::x(4));
    b.load(reg::x(7), reg::x(6), data, MemSize::B1);
    // Stop at a terminator byte (<16); otherwise accumulate the class.
    b.alui(AluOp::Sltu, reg::x(8), reg::x(7), 16);
    b.branch(BranchCond::Ne, reg::x(8), reg::ZERO, done);
    b.alui(AluOp::And, reg::x(7), reg::x(7), 0x3f);
    b.alu(AluOp::Add, reg::x(5), reg::x(5), reg::x(7));
    b.alui(AluOp::Add, reg::x(4), reg::x(4), 1);
    b.alui(AluOp::Sltu, reg::x(8), reg::x(4), bytes_per as i64);
    b.branch(BranchCond::Ne, reg::x(8), reg::ZERO, scan);
    b.bind(done);
    b.store(reg::x(5), reg::x(11), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(11), reg::x(11), 8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), bytes_per as i64);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, strings);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("perl_scan");
    gen::fill_bytes(&mut mem, &mut rng, data as u64, strings * bytes_per as usize, 0);
    Workload {
        scale,
        name: "perl_scan",
        suite: Suite::Cpu2006,
        spec_analog: "400.perlbench",
        category: Category::ControlDep,
        description: "per-string byte scan with data-dependent exit",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 447.dealII analog (CPU 2006): FEM assembly scatter — `K[map[i]] +=
/// contrib[i]` with a wide target space; rare collisions between nearby
/// iterations exercise real cross-threadlet conflicts.
pub fn deal_assembly(scale: Scale) -> Workload {
    let elems = scale.elems(400, 4_000);
    let targets = 2048usize;
    let map = 0x1_0000i64;
    let contrib = map + elems as i64 * 8;
    let matrix = contrib + elems as i64 * 8;
    let mem_size = (matrix as usize + targets * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), elems as i64 * 8);
    b.bind(top);
    b.load(reg::x(3), reg::x(1), map, MemSize::B8); // target byte offset
    b.load(reg::x(4), reg::x(1), contrib, MemSize::B8);
    b.load(reg::x(5), reg::x(3), matrix, MemSize::B8);
    b.alu(AluOp::Add, reg::x(5), reg::x(5), reg::x(4));
    b.store(reg::x(5), reg::x(3), matrix, MemSize::B8); // indirect scatter
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, matrix, targets);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("deal_assembly");
    for i in 0..elems as u64 {
        let t: u64 = rng.random_range(0..targets as u64);
        mem.write_u64(map as u64 + i * 8, t * 8).unwrap();
    }
    gen::fill_u64(&mut mem, &mut rng, contrib as u64, elems, 1 << 10);
    Workload {
        scale,
        name: "deal_assembly",
        suite: Suite::Cpu2006,
        spec_analog: "447.dealII",
        category: Category::MemParallelism,
        description: "indirect FEM scatter with rare collisions",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 507.cactuBSSN_r analog (CPU 2017): relativistic stencil — a deep FP
/// dependency chain per grid point.
pub fn cactus_bssn(scale: Scale) -> Workload {
    let n = scale.elems(450, 4_500);
    let g = 0x1_0000i64;
    let k = g + (n as i64 + 2) * 8;
    let out = k + (n as i64 + 2) * 8;
    let mem_size = (out as usize + (n + 2) * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    b.li(reg::x(3), 1);
    b.fpu(FpuOp::CvtIF, reg::f(8), reg::x(3), reg::ZERO);
    b.li(reg::x(1), 8);
    b.li(reg::x(2), (n as i64 + 1) * 8);
    b.bind(top);
    b.load(reg::f(0), reg::x(1), g, MemSize::B8);
    b.load(reg::f(1), reg::x(1), k, MemSize::B8);
    // Deep chain: ((g·k + 1)·g − k)·k + g, then a square root.
    b.fpu(FpuOp::FMul, reg::f(2), reg::f(0), reg::f(1));
    b.fpu(FpuOp::FAdd, reg::f(2), reg::f(2), reg::f(8));
    b.fpu(FpuOp::FMul, reg::f(2), reg::f(2), reg::f(0));
    b.fpu(FpuOp::FSub, reg::f(2), reg::f(2), reg::f(1));
    b.fpu(FpuOp::FMul, reg::f(2), reg::f(2), reg::f(1));
    b.fpu(FpuOp::FAdd, reg::f(2), reg::f(2), reg::f(0));
    b.fpu(FpuOp::FMul, reg::f(2), reg::f(2), reg::f(2));
    b.fpu(FpuOp::FSqrt, reg::f(2), reg::f(2), reg::f(2));
    b.store(reg::f(2), reg::x(1), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("cactus_bssn");
    gen::fill_f64(&mut mem, &mut rng, g as u64, n + 2, 0.5, 2.0);
    gen::fill_f64(&mut mem, &mut rng, k as u64, n + 2, -1.0, 1.0);
    Workload {
        scale,
        name: "cactus_bssn",
        suite: Suite::Cpu2017,
        spec_analog: "507.cactuBSSN_r",
        category: Category::DepChains,
        description: "deep FP chain per grid point",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}
