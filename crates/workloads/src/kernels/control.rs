//! Branch-dominated kernels.

use crate::gen;
use crate::{Category, Scale, Suite, Workload};
use lf_isa::{reg, AluOp, BranchCond, MemSize, Memory, ProgramBuilder};

/// 502.gcc_r analog: constant folding over an IR stream — a data-dependent
/// opcode dispatch per instruction record.
pub fn ir_constfold(scale: Scale) -> Workload {
    let n = scale.elems(500, 5_000);
    let ops = 0x1_0000i64; // opcode per record
    let lhs = ops + n as i64 * 8;
    let rhs = lhs + n as i64 * 8;
    let out = rhs + n as i64 * 8;
    let mem_size = (out as usize + n * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let op1 = b.label("op1");
    let op23 = b.label("op23");
    let op3 = b.label("op3");
    let join = b.label("join");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), n as i64 * 8);
    b.bind(top);
    b.load(reg::x(3), reg::x(1), ops, MemSize::B8);
    b.load(reg::x(4), reg::x(1), lhs, MemSize::B8);
    b.load(reg::x(5), reg::x(1), rhs, MemSize::B8);
    b.alui(AluOp::And, reg::x(6), reg::x(3), 3);
    b.alui(AluOp::Seq, reg::x(7), reg::x(6), 1);
    b.branch(BranchCond::Ne, reg::x(7), reg::ZERO, op1);
    b.alui(AluOp::Sltu, reg::x(7), reg::x(6), 2);
    b.branch(BranchCond::Eq, reg::x(7), reg::ZERO, op23);
    b.alu(AluOp::Add, reg::x(8), reg::x(4), reg::x(5)); // op 0: add
    b.jump(join);
    b.bind(op1);
    b.alu(AluOp::Sub, reg::x(8), reg::x(4), reg::x(5)); // op 1: sub
    b.jump(join);
    b.bind(op23);
    b.alui(AluOp::Seq, reg::x(7), reg::x(6), 3);
    b.branch(BranchCond::Ne, reg::x(7), reg::ZERO, op3);
    b.alu(AluOp::Xor, reg::x(8), reg::x(4), reg::x(5)); // op 2: xor
    b.jump(join);
    b.bind(op3);
    b.alu(AluOp::Mul, reg::x(8), reg::x(4), reg::x(5)); // op 3: mul
    b.bind(join);
    b.store(reg::x(8), reg::x(1), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("ir_constfold");
    gen::fill_u64(&mut mem, &mut rng, ops as u64, n, 0);
    gen::fill_u64(&mut mem, &mut rng, lhs as u64, n, 1 << 20);
    gen::fill_u64(&mut mem, &mut rng, rhs as u64, n, 1 << 20);
    Workload {
        scale,
        name: "ir_constfold",
        suite: Suite::Cpu2017,
        spec_analog: "502.gcc_r",
        category: Category::ControlDep,
        description: "opcode dispatch over an IR stream",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 500.perlbench_r analog: hash-table probing — hash a key, load the table
/// slot, and take a data-dependent hit/miss branch (second probe on miss).
pub fn hash_lookup(scale: Scale) -> Workload {
    let n = scale.elems(500, 5_000);
    let table_slots = 1024i64;
    let keys = 0x1_0000i64;
    let table = keys + n as i64 * 8;
    let out = table + table_slots * 8 + 64;
    let mem_size = (out as usize + n * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let miss = b.label("miss");
    let join = b.label("join");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), n as i64 * 8);
    b.li(reg::x(9), (table_slots - 1) * 8);
    b.bind(top);
    b.load(reg::x(3), reg::x(1), keys, MemSize::B8);
    b.alui(AluOp::Mul, reg::x(4), reg::x(3), 0x9E3779B1);
    b.alui(AluOp::Srl, reg::x(4), reg::x(4), 13);
    b.alu(AluOp::And, reg::x(4), reg::x(4), reg::x(9));
    b.load(reg::x(5), reg::x(4), table, MemSize::B8);
    b.alui(AluOp::And, reg::x(6), reg::x(5), 7);
    b.branch(BranchCond::Ne, reg::x(6), reg::ZERO, miss);
    b.alu(AluOp::Add, reg::x(7), reg::x(5), reg::x(3)); // hit path
    b.jump(join);
    b.bind(miss);
    b.alui(AluOp::Add, reg::x(4), reg::x(4), 8); // linear re-probe
    b.alu(AluOp::And, reg::x(4), reg::x(4), reg::x(9));
    b.load(reg::x(7), reg::x(4), table, MemSize::B8);
    b.alui(AluOp::Xor, reg::x(7), reg::x(7), 0x77);
    b.bind(join);
    b.store(reg::x(7), reg::x(1), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("hash_lookup");
    gen::fill_u64(&mut mem, &mut rng, keys as u64, n, 0);
    gen::fill_u64(&mut mem, &mut rng, table as u64, table_slots as usize, 0);
    Workload {
        scale,
        name: "hash_lookup",
        suite: Suite::Cpu2017,
        spec_analog: "500.perlbench_r",
        category: Category::BranchPrefetch,
        description: "hash probe with data-dependent hit/miss branch",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 548.exchange2_r analog: candidate validation — per candidate, a chain of
/// mostly-taken comparisons over loaded digits that occasionally fails.
pub fn exchange2_perm(scale: Scale) -> Workload {
    let n = scale.elems(400, 4_000);
    let cands = 0x1_0000i64; // 4 digits per candidate (4×8 B)
    let out = cands + n as i64 * 32 + 64;
    let mem_size = (out as usize + n * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let bad = b.label("bad");
    let done = b.label("done");
    b.li(reg::x(1), 0); // candidate byte offset (stride 32)
    b.li(reg::x(2), n as i64 * 32);
    b.li(reg::x(11), 0); // output byte offset (stride 8)
    b.bind(top);
    b.load(reg::x(3), reg::x(1), cands, MemSize::B8);
    b.load(reg::x(4), reg::x(1), cands + 8, MemSize::B8);
    b.load(reg::x(5), reg::x(1), cands + 16, MemSize::B8);
    b.load(reg::x(6), reg::x(1), cands + 24, MemSize::B8);
    b.branch(BranchCond::Eq, reg::x(3), reg::x(4), bad);
    b.branch(BranchCond::Eq, reg::x(4), reg::x(5), bad);
    b.branch(BranchCond::Eq, reg::x(5), reg::x(6), bad);
    b.branch(BranchCond::Eq, reg::x(3), reg::x(6), bad);
    b.li(reg::x(7), 1); // valid permutation prefix
    b.jump(done);
    b.bind(bad);
    b.li(reg::x(7), 0);
    b.bind(done);
    b.store(reg::x(7), reg::x(11), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(11), reg::x(11), 8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 32);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("exchange2_perm");
    gen::fill_u64(&mut mem, &mut rng, cands as u64, n * 4, 6);
    Workload {
        scale,
        name: "exchange2_perm",
        suite: Suite::Cpu2017,
        spec_analog: "548.exchange2_r",
        category: Category::BranchPrefetch,
        description: "digit-validity checks with failing branches",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 456.hmmer analog (CPU 2006): one Viterbi row — each cell takes the max
/// of two candidate scores from the *previous* row (read-only), so cells
/// are independent; the max is a data-dependent branch.
pub fn hmmer_viterbi(scale: Scale) -> Workload {
    let n = scale.elems(600, 6_000);
    let mpp = 0x1_0000i64; // previous row, match scores
    let ip = mpp + (n as i64 + 1) * 8;
    let tr = ip + (n as i64 + 1) * 8;
    let mc = tr + (n as i64 + 1) * 8; // output row
    let mem_size = (mc as usize + (n + 1) * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let take2 = b.label("take2");
    let join = b.label("join");
    b.li(reg::x(1), 8);
    b.li(reg::x(2), (n as i64 + 1) * 8);
    b.bind(top);
    b.load(reg::x(3), reg::x(1), mpp - 8, MemSize::B8);
    b.load(reg::x(4), reg::x(1), ip - 8, MemSize::B8);
    b.load(reg::x(5), reg::x(1), tr, MemSize::B8);
    b.alu(AluOp::Add, reg::x(3), reg::x(3), reg::x(5));
    b.alui(AluOp::Add, reg::x(4), reg::x(4), 3);
    b.branch(BranchCond::Lt, reg::x(3), reg::x(4), take2);
    b.alui(AluOp::Add, reg::x(6), reg::x(3), 0);
    b.jump(join);
    b.bind(take2);
    b.alui(AluOp::Add, reg::x(6), reg::x(4), 0);
    b.bind(join);
    b.store(reg::x(6), reg::x(1), mc, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, mc, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("hmmer_viterbi");
    gen::fill_u64(&mut mem, &mut rng, mpp as u64, n + 1, 1 << 16);
    gen::fill_u64(&mut mem, &mut rng, ip as u64, n + 1, 1 << 16);
    gen::fill_u64(&mut mem, &mut rng, tr as u64, n + 1, 1 << 10);
    Workload {
        scale,
        name: "hmmer_viterbi",
        suite: Suite::Cpu2006,
        spec_analog: "456.hmmer",
        category: Category::ControlDep,
        description: "Viterbi row with data-dependent max",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 401.bzip2 analog (CPU 2006): suffix-order comparison — a two-level
/// indirect load pair and a comparison branch per element.
pub fn bzip_bwt(scale: Scale) -> Workload {
    let n = scale.elems(500, 5_000);
    let ptr = 0x1_0000i64; // permutation of positions
    let data = ptr + n as i64 * 8;
    let out = data + n as i64 * 8 + 64;
    let mem_size = (out as usize + n * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let gt = b.label("gt");
    let join = b.label("join");
    b.li(reg::x(1), 0);
    b.li(reg::x(2), (n as i64 - 1) * 8);
    b.bind(top);
    b.load(reg::x(3), reg::x(1), ptr, MemSize::B8);
    b.load(reg::x(4), reg::x(1), ptr + 8, MemSize::B8);
    b.load(reg::x(5), reg::x(3), data, MemSize::B8); // data[p[i]]
    b.load(reg::x(6), reg::x(4), data, MemSize::B8); // data[p[i+1]]
    b.branch(BranchCond::Ltu, reg::x(6), reg::x(5), gt);
    b.alu(AluOp::Sub, reg::x(7), reg::x(6), reg::x(5));
    b.jump(join);
    b.bind(gt);
    b.alu(AluOp::Sub, reg::x(7), reg::x(5), reg::x(6));
    b.alui(AluOp::Or, reg::x(7), reg::x(7), 1);
    b.bind(join);
    b.store(reg::x(7), reg::x(1), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, n - 1);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("bzip_bwt");
    gen::fill_permutation(&mut mem, &mut rng, ptr as u64, n);
    gen::fill_u64(&mut mem, &mut rng, data as u64, n, 0);
    Workload {
        scale,
        name: "bzip_bwt",
        suite: Suite::Cpu2006,
        spec_analog: "401.bzip2",
        category: Category::BranchPrefetch,
        description: "suffix comparisons through double indirection",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}

/// 445.gobmk analog (CPU 2006): board-pattern classification — load four
/// neighbors, combine into a pattern, and classify with branches.
pub fn gobmk_patterns(scale: Scale) -> Workload {
    let n = scale.elems(500, 5_000);
    let board = 0x1_0000i64;
    let out = board + (n as i64 + 32) * 8;
    let mem_size = (out as usize + n * 8 + 64).next_power_of_two();

    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let dead = b.label("dead");
    let edge = b.label("edge");
    let join = b.label("join");
    b.li(reg::x(1), 8);
    b.li(reg::x(2), (n as i64 + 1) * 8);
    b.bind(top);
    b.load(reg::x(3), reg::x(1), board - 8, MemSize::B8);
    b.load(reg::x(4), reg::x(1), board + 8, MemSize::B8);
    b.load(reg::x(5), reg::x(1), board + 16 * 8, MemSize::B8);
    b.load(reg::x(6), reg::x(1), board, MemSize::B8);
    b.alui(AluOp::And, reg::x(3), reg::x(3), 3);
    b.alui(AluOp::And, reg::x(4), reg::x(4), 3);
    b.alui(AluOp::And, reg::x(5), reg::x(5), 3);
    b.alui(AluOp::Sll, reg::x(4), reg::x(4), 2);
    b.alui(AluOp::Sll, reg::x(5), reg::x(5), 4);
    b.alu(AluOp::Or, reg::x(3), reg::x(3), reg::x(4));
    b.alu(AluOp::Or, reg::x(3), reg::x(3), reg::x(5)); // 6-bit pattern
    b.alui(AluOp::Seq, reg::x(7), reg::x(3), 0);
    b.branch(BranchCond::Ne, reg::x(7), reg::ZERO, dead);
    b.alui(AluOp::Sltu, reg::x(7), reg::x(3), 21);
    b.branch(BranchCond::Eq, reg::x(7), reg::ZERO, edge);
    b.alu(AluOp::Add, reg::x(8), reg::x(3), reg::x(6)); // interior
    b.jump(join);
    b.bind(dead);
    b.li(reg::x(8), 0);
    b.jump(join);
    b.bind(edge);
    b.alu(AluOp::Xor, reg::x(8), reg::x(3), reg::x(6));
    b.alui(AluOp::Or, reg::x(8), reg::x(8), 0x100);
    b.bind(join);
    b.store(reg::x(8), reg::x(1), out, MemSize::B8);
    b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
    b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
    super::checksum_epilogue(&mut b, out, n);
    b.halt();

    let mut mem = Memory::new(mem_size);
    let mut rng = gen::rng_for("gobmk_patterns");
    gen::fill_u64(&mut mem, &mut rng, board as u64, n + 32, 0);
    Workload {
        scale,
        name: "gobmk_patterns",
        suite: Suite::Cpu2006,
        spec_analog: "445.gobmk",
        category: Category::ControlDep,
        description: "neighbor-pattern classification with branches",
        in_openmp_region: false,
        program: b.build().expect("labels bound"),
        mem,
    }
}
