//! # lf-uarch — microarchitecture component library
//!
//! Cycle-level building blocks for the LoopFrog reproduction's out-of-order
//! core (paper Table 1): an L-TAGE-style branch predictor with loop
//! predictor, BTB and RAS ([`bpred`]), a three-level cache hierarchy with
//! MSHRs and stride prefetchers ([`cache`], [`prefetch`]), reference-counted
//! register renaming ([`rename`]), functional-unit pools ([`fu`]), a shared
//! issue queue ([`iq`]), and the configuration types ([`config`]).
//!
//! The pipeline control loop that composes these into a core lives in the
//! `loopfrog` crate, because threadlet policy (spawn/squash/commit) is the
//! paper's contribution and is woven through every stage.

#![warn(missing_docs)]

pub mod bpred;
pub mod cache;
pub mod config;
pub mod fu;
pub mod iq;
pub mod prefetch;
pub mod rename;

pub use bpred::{BpLookup, BranchPredictor, History};
pub use cache::{AccessKind, Cache, MemHierarchy};
pub use config::{CacheConfig, CoreConfig, FuConfig, MemConfig};
pub use fu::FuPools;
pub use iq::IssueQueue;
pub use prefetch::StridePrefetcher;
pub use rename::{PhysReg, PhysRegFile, RenameMap};
