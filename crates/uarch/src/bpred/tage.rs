//! A TAGE conditional branch predictor (Seznec's L-TAGE direction component,
//! Table 1: "256 Kbits LTAGE, 13-component TAGE").
//!
//! Tagged geometric-history tables back a bimodal base predictor. Tables are
//! shared between threadlets; the global history register is supplied by the
//! caller (the paper keeps "(global) history per threadlet").

/// Rolling global branch history, maintained per threadlet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct History(pub u64);

impl History {
    /// Shifts one branch outcome into the history.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        self.0 = (self.0 << 1) | taken as u64;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    tag: u16,
    ctr: i8,    // 3-bit signed counter, -4..=3; taken when >= 0
    useful: u8, // 2-bit useful counter
}

#[derive(Debug, Clone)]
struct TaggedTable {
    entries: Vec<TaggedEntry>,
    hist_len: u32,
    index_bits: u32,
}

impl TaggedTable {
    fn new(size: usize, hist_len: u32) -> TaggedTable {
        assert!(size.is_power_of_two());
        TaggedTable {
            entries: vec![TaggedEntry::default(); size],
            hist_len,
            index_bits: size.trailing_zeros(),
        }
    }

    fn fold(&self, hist: u64) -> u64 {
        // Fold the most recent `hist_len` bits of history into index_bits.
        let h = if self.hist_len >= 64 { hist } else { hist & ((1u64 << self.hist_len) - 1) };
        let mut folded = 0u64;
        let mut rest = h;
        while rest != 0 {
            folded ^= rest & ((1 << self.index_bits) - 1);
            rest >>= self.index_bits;
        }
        folded
    }

    fn index(&self, pc: u64, hist: u64) -> usize {
        let f = self.fold(hist);
        ((pc ^ (pc >> self.index_bits as u64) ^ f) & ((1 << self.index_bits) - 1)) as usize
    }

    fn tag(&self, pc: u64, hist: u64) -> u16 {
        let f = self.fold(hist.rotate_left(3));
        ((pc >> 2) ^ f ^ (pc << 1)) as u16 & 0x3ff
    }
}

/// Outcome of a TAGE lookup, retained for the update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TageLookup {
    /// Predicted direction.
    pub taken: bool,
    /// Provider table (None = bimodal base).
    provider: Option<usize>,
    /// Alternate prediction (used for the allocate-on-mispredict policy).
    alt_taken: bool,
    /// Whether the provider entry was newly allocated / weak.
    weak: bool,
}

/// The TAGE predictor.
#[derive(Debug, Clone)]
pub struct Tage {
    bimodal: Vec<i8>, // 2-bit counters, -2..=1; taken when >= 0
    tables: Vec<TaggedTable>,
    use_alt_on_weak: i8,
    tick: u64,
}

impl Tage {
    /// Creates a TAGE predictor with the default table geometry: a 16K-entry
    /// bimodal base and six 2K-entry tagged tables with history lengths
    /// 4, 8, 16, 28, 44, and 64.
    pub fn new() -> Tage {
        Tage::with_geometry(16 << 10, 2 << 10, &[4, 8, 16, 28, 44, 64])
    }

    /// Creates a TAGE predictor with explicit table sizes and history lengths.
    ///
    /// # Panics
    ///
    /// Panics if the sizes are not powers of two or `hist_lens` is empty.
    pub fn with_geometry(bimodal_size: usize, table_size: usize, hist_lens: &[u32]) -> Tage {
        assert!(bimodal_size.is_power_of_two() && !hist_lens.is_empty());
        Tage {
            bimodal: vec![0; bimodal_size],
            tables: hist_lens.iter().map(|&h| TaggedTable::new(table_size, h)).collect(),
            use_alt_on_weak: 0,
            tick: 0,
        }
    }

    fn bimodal_index(&self, pc: u64) -> usize {
        (pc % self.bimodal.len() as u64) as usize
    }

    /// Predicts the direction of the conditional branch at `pc` under
    /// per-threadlet history `hist`.
    pub fn predict(&self, pc: u64, hist: History) -> TageLookup {
        let base_taken = self.bimodal[self.bimodal_index(pc)] >= 0;
        let mut provider = None;
        let mut alt = base_taken;
        let mut pred = base_taken;
        let mut weak = false;
        // Scan from shortest to longest history; the longest hit provides.
        for (i, t) in self.tables.iter().enumerate() {
            let e = &t.entries[t.index(pc, hist.0)];
            if e.tag == t.tag(pc, hist.0) {
                alt = pred;
                pred = e.ctr >= 0;
                provider = Some(i);
                weak = e.ctr == 0 || e.ctr == -1;
            }
        }
        // Newly-allocated weak entries are less reliable than the alternate.
        if weak && self.use_alt_on_weak >= 0 && provider.is_some() {
            return TageLookup { taken: alt, provider, alt_taken: alt, weak };
        }
        TageLookup { taken: pred, provider, alt_taken: alt, weak }
    }

    /// Trains the predictor with the resolved outcome. `lookup` must be the
    /// value returned by [`Tage::predict`] for this branch instance.
    pub fn update(&mut self, pc: u64, hist: History, lookup: TageLookup, taken: bool) {
        self.tick += 1;
        // Track whether trusting the alternate on weak entries helps.
        if lookup.weak && lookup.provider.is_some() {
            let delta = if lookup.alt_taken == taken { 1 } else { -1 };
            self.use_alt_on_weak = (self.use_alt_on_weak + delta).clamp(-8, 7);
        }
        match lookup.provider {
            None => {
                let idx = self.bimodal_index(pc);
                let c = &mut self.bimodal[idx];
                *c = (*c + if taken { 1 } else { -1 }).clamp(-2, 1);
            }
            Some(p) => {
                let idx = self.tables[p].index(pc, hist.0);
                let e = &mut self.tables[p].entries[idx];
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                if (e.ctr >= 0) == taken
                    && lookup.taken == taken
                    && lookup.taken != lookup.alt_taken
                {
                    e.useful = (e.useful + 1).min(3);
                }
            }
        }
        // Allocate a new entry in a longer-history table on misprediction.
        if lookup.taken != taken {
            let start = lookup.provider.map_or(0, |p| p + 1);
            let mut allocated = false;
            for t in self.tables[start..].iter_mut() {
                let idx = t.index(pc, hist.0);
                let tag = t.tag(pc, hist.0);
                let e = &mut t.entries[idx];
                if e.useful == 0 {
                    e.tag = tag;
                    e.ctr = if taken { 0 } else { -1 };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                // Decay usefulness so future allocations can succeed.
                for t in self.tables[start..].iter_mut() {
                    let idx = t.index(pc, hist.0);
                    let e = &mut t.entries[idx];
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }
        // Periodic global useful-bit decay.
        if self.tick.is_multiple_of(1 << 18) {
            for t in self.tables.iter_mut() {
                for e in t.entries.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }
    }
}

impl Default for Tage {
    fn default() -> Tage {
        Tage::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(tage: &mut Tage, pattern: &[bool], reps: usize) -> (u64, u64) {
        let pc = 0x400;
        let mut hist = History::default();
        let (mut correct, mut total) = (0u64, 0u64);
        for _ in 0..reps {
            for &taken in pattern {
                let l = tage.predict(pc, hist);
                if l.taken == taken {
                    correct += 1;
                }
                total += 1;
                tage.update(pc, hist, l, taken);
                hist.push(taken);
            }
        }
        (correct, total)
    }

    #[test]
    fn learns_always_taken() {
        let mut t = Tage::new();
        let (c, n) = train(&mut t, &[true], 200);
        assert!(c as f64 / n as f64 > 0.95, "accuracy {c}/{n}");
    }

    #[test]
    fn learns_short_periodic_pattern() {
        let mut t = Tage::new();
        // T T N repeated: bimodal alone cannot get this right.
        let (_, _) = train(&mut t, &[true, true, false], 100);
        let (c, n) = train(&mut t, &[true, true, false], 100);
        assert!(c as f64 / n as f64 > 0.9, "late accuracy {c}/{n}");
    }

    #[test]
    fn random_pattern_is_not_catastrophic() {
        // Deterministic pseudo-random pattern; accuracy should be ~50%,
        // and the predictor must not panic or overflow.
        let mut t = Tage::new();
        let mut x: u64 = 0x12345;
        let pattern: Vec<bool> = (0..512)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 62) & 1 == 1
            })
            .collect();
        let (c, n) = train(&mut t, &pattern, 4);
        assert!(c <= n);
    }

    #[test]
    fn distinct_pcs_do_not_destructively_alias_much() {
        let mut t = Tage::new();
        let mut hist = History::default();
        // Two branches with opposite biases.
        for _ in 0..500 {
            for (pc, dir) in [(0x10u64, true), (0x20u64, false)] {
                let l = t.predict(pc, hist);
                t.update(pc, hist, l, dir);
                hist.push(dir);
            }
        }
        let l1 = t.predict(0x10, hist);
        let l2 = t.predict(0x20, hist);
        assert!(l1.taken);
        assert!(!l2.taken);
    }
}
