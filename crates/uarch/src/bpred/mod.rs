//! The combined front-end branch predictor.
//!
//! TAGE direction prediction with a loop-predictor override, a BTB for
//! targets, and a return-address stack — the L-TAGE arrangement from
//! Table 1. Prediction tables are shared by all threadlets; global history
//! and the RAS are per threadlet, matching the paper ("Tables shared and
//! updated by all contexts. (Global) history per threadlet").

pub mod btb;
pub mod loop_pred;
pub mod tage;

pub use btb::{Btb, Ras};
pub use loop_pred::{LoopLookup, LoopPredictor};
pub use tage::{History, Tage, TageLookup};

/// The result of a conditional-branch prediction; retain it and pass it back
/// to [`BranchPredictor::update_branch`] at resolve time.
#[derive(Debug, Clone, Copy)]
pub struct BpLookup {
    /// Final predicted direction.
    pub taken: bool,
    /// The TAGE component's lookup state.
    tage: TageLookup,
    /// Whether the loop predictor supplied the final direction.
    used_loop: bool,
    /// Global history before this branch (needed for training and repair).
    pub hist_before: History,
}

/// Shared-table, per-threadlet-history branch predictor.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    tage: Tage,
    loops: LoopPredictor,
    btb: Btb,
    ras: Vec<Ras>,
    hist: Vec<History>,
}

impl BranchPredictor {
    /// Creates a predictor supporting `threadlets` contexts.
    pub fn new(threadlets: usize) -> BranchPredictor {
        BranchPredictor {
            tage: Tage::new(),
            loops: LoopPredictor::new(256),
            btb: Btb::new(4096),
            ras: (0..threadlets).map(|_| Ras::new(48)).collect(),
            hist: vec![History::default(); threadlets],
        }
    }

    /// The current speculative global history of a threadlet.
    pub fn history(&self, tid: usize) -> History {
        self.hist[tid]
    }

    /// Restores a threadlet's history (on squash, to the value captured in
    /// the oldest squashed instruction's [`BpLookup`]).
    pub fn restore_history(&mut self, tid: usize, hist: History) {
        self.hist[tid] = hist;
    }

    /// Copies predictor context (history) from a parent threadlet to a
    /// freshly spawned one, and clears the child's RAS.
    pub fn clone_context(&mut self, parent: usize, child: usize) {
        self.hist[child] = self.hist[parent];
        self.ras[child] = Ras::new(48);
    }

    /// Predicts the conditional branch at `pc` for threadlet `tid`,
    /// speculatively updating that threadlet's history.
    pub fn predict_branch(&mut self, tid: usize, pc: u64) -> BpLookup {
        let hist_before = self.hist[tid];
        let tage = self.tage.predict(pc, hist_before);
        let (taken, used_loop) = match self.loops.predict(pc).taken {
            Some(dir) => (dir, true),
            None => (tage.taken, false),
        };
        self.hist[tid].push(taken);
        BpLookup { taken, tage, used_loop, hist_before }
    }

    /// Resolves a conditional branch: trains TAGE and the loop predictor and
    /// repairs this threadlet's speculative history if mispredicted.
    pub fn update_branch(&mut self, tid: usize, pc: u64, lookup: BpLookup, taken: bool) {
        self.tage.update(pc, lookup.hist_before, lookup.tage, taken);
        self.loops.update(pc, taken);
        if lookup.taken != taken {
            let mut h = lookup.hist_before;
            h.push(taken);
            self.hist[tid] = h;
        }
        let _ = lookup.used_loop;
    }

    /// Warms the predictor with one recorded branch outcome from a
    /// checkpoint's functional-warming stream: a full predict + resolve
    /// round on `tid`, so TAGE, the loop predictor, and the threadlet's
    /// global history end exactly where a live execution of the same
    /// branch sequence would leave them. Replay the stream in recorded
    /// (chronological) order.
    pub fn warm_branch(&mut self, tid: usize, pc: u64, taken: bool) {
        let lookup = self.predict_branch(tid, pc);
        self.update_branch(tid, pc, lookup, taken);
    }

    /// Predicts the target of an indirect jump (return) for `tid`: RAS first,
    /// BTB as fallback.
    pub fn predict_indirect(&mut self, tid: usize, pc: u64) -> Option<usize> {
        self.ras[tid].pop().or_else(|| self.btb.lookup(pc))
    }

    /// Notes a call instruction: pushes the return address on `tid`'s RAS.
    pub fn on_call(&mut self, tid: usize, return_addr: usize) {
        self.ras[tid].push(return_addr);
    }

    /// Installs the resolved target of an indirect or BTB-miss control
    /// instruction.
    pub fn update_target(&mut self, pc: u64, target: usize) {
        self.btb.update(pc, target);
    }

    /// The BTB target for `pc`, if cached (used for direct-branch target
    /// prediction before decode in a real front end; our fetch reads the
    /// instruction directly, so this is only exercised for indirects).
    pub fn btb_lookup(&self, pc: u64) -> Option<usize> {
        self.btb.lookup(pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_override_beats_tage_on_exits() {
        let mut bp = BranchPredictor::new(1);
        let pc = 0x40;
        // Train a loop with trip count 7 for many visits.
        for _ in 0..20 {
            for i in 0..=7 {
                let taken = i < 7;
                let l = bp.predict_branch(0, pc);
                bp.update_branch(0, pc, l, taken);
            }
        }
        // Now every iteration including the exit should be predicted.
        let mut correct = 0;
        for i in 0..=7 {
            let taken = i < 7;
            let l = bp.predict_branch(0, pc);
            if l.taken == taken {
                correct += 1;
            }
            bp.update_branch(0, pc, l, taken);
        }
        assert_eq!(correct, 8);
    }

    #[test]
    fn history_repair_on_mispredict() {
        let mut bp = BranchPredictor::new(1);
        let l = bp.predict_branch(0, 0x10);
        // Force the opposite outcome; history must equal before+actual.
        let actual = !l.taken;
        bp.update_branch(0, 0x10, l, actual);
        let mut expect = l.hist_before;
        expect.push(actual);
        assert_eq!(bp.history(0), expect);
    }

    #[test]
    fn ras_predicts_matching_return() {
        let mut bp = BranchPredictor::new(2);
        bp.on_call(1, 123);
        assert_eq!(bp.predict_indirect(1, 0x99), Some(123));
        // Empty RAS falls back to BTB.
        bp.update_target(0x99, 55);
        assert_eq!(bp.predict_indirect(1, 0x99), Some(55));
    }

    #[test]
    fn warm_branch_replay_matches_live_training() {
        // Replaying a recorded outcome stream through warm_branch leaves
        // the predictor in the same state as living through it: both
        // predict the next visits identically.
        let stream: Vec<(u64, bool)> = (0..200).map(|i| (0x40 + (i % 3) * 8, i % 7 != 0)).collect();
        let mut live = BranchPredictor::new(1);
        for &(pc, taken) in &stream {
            let l = live.predict_branch(0, pc);
            live.update_branch(0, pc, l, taken);
        }
        let mut warmed = BranchPredictor::new(1);
        for &(pc, taken) in &stream {
            warmed.warm_branch(0, pc, taken);
        }
        assert_eq!(warmed.history(0), live.history(0));
        for pc in [0x40, 0x48, 0x50] {
            let a = live.predict_branch(0, pc);
            let b = warmed.predict_branch(0, pc);
            assert_eq!(a.taken, b.taken, "warmed and live disagree at {pc:#x}");
        }
    }

    #[test]
    fn per_threadlet_history_is_independent() {
        let mut bp = BranchPredictor::new(2);
        let l0 = bp.predict_branch(0, 0x10);
        let _ = bp.predict_branch(0, 0x10);
        assert_eq!(bp.history(1), History::default());
        bp.clone_context(0, 1);
        assert_ne!(bp.history(1), l0.hist_before);
        assert_eq!(bp.history(1), bp.history(0));
    }
}
