//! Loop termination predictor (the "Loop" component of L-TAGE; Table 1:
//! "256-entry Loop").
//!
//! Learns the trip count of regular loops and predicts the exit iteration
//! exactly, overriding TAGE when confident.

#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    tag: u32,
    trip: u32,      // learned iteration count between not-taken outcomes
    current: u32,   // iterations seen since last exit
    confidence: u8, // saturating confidence, predicts when >= CONF_THRESHOLD
    valid: bool,
}

const CONF_THRESHOLD: u8 = 3;
const CONF_MAX: u8 = 7;

/// Prediction from the loop predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopLookup {
    /// Direction prediction, if the predictor is confident for this branch.
    pub taken: Option<bool>,
}

/// A tagged table of loop trip counters.
///
/// The predictor models backward loop branches that are taken `trip` times
/// and then fall through once per loop visit.
#[derive(Debug, Clone)]
pub struct LoopPredictor {
    entries: Vec<LoopEntry>,
}

impl LoopPredictor {
    /// Creates a predictor with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> LoopPredictor {
        assert!(entries.is_power_of_two());
        LoopPredictor { entries: vec![LoopEntry::default(); entries] }
    }

    fn slot(&self, pc: u64) -> usize {
        (pc % self.entries.len() as u64) as usize
    }

    fn tag(pc: u64) -> u32 {
        ((pc >> 8) ^ pc) as u32 | 1
    }

    /// Predicts the branch at `pc`: `Some(direction)` when confident.
    pub fn predict(&self, pc: u64) -> LoopLookup {
        let e = &self.entries[self.slot(pc)];
        if e.valid && e.tag == Self::tag(pc) && e.confidence >= CONF_THRESHOLD {
            // Taken while below the learned trip count, not-taken at it.
            LoopLookup { taken: Some(e.current < e.trip) }
        } else {
            LoopLookup { taken: None }
        }
    }

    /// Trains with the resolved outcome of the branch at `pc`.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let slot = self.slot(pc);
        let tag = Self::tag(pc);
        let e = &mut self.entries[slot];
        if !e.valid || e.tag != tag {
            // Allocate only on a not-taken outcome (potential loop exit) so
            // `current` phases align with loop visits.
            if !taken {
                *e = LoopEntry { tag, trip: 0, current: 0, confidence: 0, valid: true };
            }
            return;
        }
        if taken {
            e.current = e.current.saturating_add(1);
            // A taken outcome past the learned trip count is a misprediction.
            if e.current > e.trip {
                e.confidence = 0;
            }
        } else {
            if e.current == e.trip {
                e.confidence = (e.confidence + 1).min(CONF_MAX);
            } else {
                e.trip = e.current;
                e.confidence = 0;
            }
            e.current = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn visit(p: &mut LoopPredictor, pc: u64, trip: u32) -> (u64, u64) {
        // One loop visit: `trip` taken outcomes then one not-taken.
        let (mut right, mut total) = (0, 0);
        for i in 0..=trip {
            let taken = i < trip;
            if let Some(pred) = p.predict(pc).taken {
                total += 1;
                if pred == taken {
                    right += 1;
                }
            }
            p.update(pc, taken);
        }
        (right, total)
    }

    #[test]
    fn learns_fixed_trip_count_exactly() {
        let mut p = LoopPredictor::new(256);
        for _ in 0..6 {
            visit(&mut p, 0x80, 17);
        }
        let (right, total) = visit(&mut p, 0x80, 17);
        assert_eq!(total, 18, "confident on every iteration");
        assert_eq!(right, 18, "including the exit");
    }

    #[test]
    fn trip_change_resets_confidence() {
        let mut p = LoopPredictor::new(256);
        for _ in 0..6 {
            visit(&mut p, 0x80, 10);
        }
        visit(&mut p, 0x80, 12); // trip changed; mispredicts, must relearn
        let (_, total) = visit(&mut p, 0x80, 12);
        // Not confident immediately after the change.
        assert_eq!(total, 0);
        for _ in 0..6 {
            visit(&mut p, 0x80, 12);
        }
        let (right, total) = visit(&mut p, 0x80, 12);
        assert_eq!((right, total), (13, 13));
    }

    #[test]
    fn unconfident_for_irregular_loops() {
        let mut p = LoopPredictor::new(256);
        for t in [3u32, 9, 4, 11, 2, 13] {
            visit(&mut p, 0x80, t);
        }
        let (_, total) = visit(&mut p, 0x80, 5);
        assert_eq!(total, 0, "never confident on irregular trips");
    }
}
