//! Branch target buffer (Table 1: "4096-entry BTB").

/// A direct-mapped, tagged branch target buffer mapping branch PCs to
/// predicted targets.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u64, usize)>>, // (pc tag, target)
}

impl Btb {
    /// Creates a BTB with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Btb {
        assert!(entries.is_power_of_two());
        Btb { entries: vec![None; entries] }
    }

    fn slot(&self, pc: u64) -> usize {
        (pc % self.entries.len() as u64) as usize
    }

    /// The predicted target for the control instruction at `pc`, if cached.
    pub fn lookup(&self, pc: u64) -> Option<usize> {
        match self.entries[self.slot(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Installs or updates the target for `pc`.
    pub fn update(&mut self, pc: u64, target: usize) {
        let slot = self.slot(pc);
        self.entries[slot] = Some((pc, target));
    }
}

/// Return-address stack (Table 1: "48-entry RAS").
///
/// A circular stack: overflow overwrites the oldest entry, underflow yields
/// `None` (predict via BTB instead).
#[derive(Debug, Clone)]
pub struct Ras {
    stack: Vec<usize>,
    capacity: usize,
}

impl Ras {
    /// Creates a RAS holding up to `capacity` return addresses.
    pub fn new(capacity: usize) -> Ras {
        Ras { stack: Vec::with_capacity(capacity), capacity }
    }

    /// Pushes a return address (on call).
    pub fn push(&mut self, addr: usize) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(addr);
    }

    /// Pops the predicted return address (on return).
    pub fn pop(&mut self) -> Option<usize> {
        self.stack.pop()
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btb_hits_after_update() {
        let mut b = Btb::new(64);
        assert_eq!(b.lookup(100), None);
        b.update(100, 7);
        assert_eq!(b.lookup(100), Some(7));
    }

    #[test]
    fn btb_tag_rejects_aliases() {
        let mut b = Btb::new(64);
        b.update(100, 7);
        // 164 maps to the same slot but has a different tag.
        assert_eq!(b.lookup(164), None);
        b.update(164, 9);
        assert_eq!(b.lookup(164), Some(9));
        assert_eq!(b.lookup(100), None, "evicted by alias");
    }

    #[test]
    fn ras_lifo_and_overflow() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // evicts 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }
}
