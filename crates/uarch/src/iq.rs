//! Out-of-order issue queue with physical-register wakeup.
//!
//! Entries wait until all source physical registers are ready, then issue
//! oldest-first subject to the caller's structural constraints (functional
//! units, cache ports). Instructions from all threadlets share the queue
//! (Table 1: "Dynamically shared: … 384-entry IQ").

use crate::rename::{PhysReg, PhysRegFile};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Debug;

#[derive(Debug, Clone)]
struct Entry {
    tid: usize,
    srcs: [Option<PhysReg>; 2],
    waiting: u8, // number of not-ready sources
}

/// The shared issue queue, keyed by the core's instruction-id type `K`
/// (age order must equal `Ord` order for oldest-first selection).
#[derive(Debug, Clone)]
pub struct IssueQueue<K: Copy + Ord + Debug = u64> {
    capacity: usize,
    entries: BTreeMap<K, Entry>,
    waiters: HashMap<PhysReg, Vec<K>>,
}

impl<K: Copy + Ord + Debug> IssueQueue<K> {
    /// Creates a queue holding up to `capacity` instructions.
    pub fn new(capacity: usize) -> IssueQueue<K> {
        IssueQueue { capacity, entries: BTreeMap::new(), waiters: HashMap::new() }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue has no free slot.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Inserts instruction `uid` of threadlet `tid` with its renamed source
    /// registers. Sources already ready in `prf` don't wait. Returns `false`
    /// (and inserts nothing) if the queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `uid` is already present.
    pub fn insert(
        &mut self,
        uid: K,
        tid: usize,
        srcs: [Option<PhysReg>; 2],
        prf: &PhysRegFile,
    ) -> bool {
        if self.is_full() {
            return false;
        }
        let mut waiting = 0;
        for s in srcs.iter().flatten() {
            if !prf.is_ready(*s) {
                waiting += 1;
                self.waiters.entry(*s).or_default().push(uid);
            }
        }
        let prev = self.entries.insert(uid, Entry { tid, srcs, waiting });
        assert!(prev.is_none(), "duplicate uid {uid:?} in issue queue");
        true
    }

    /// Wakes consumers of physical register `p` (its producer completed).
    pub fn wakeup(&mut self, p: PhysReg) {
        if let Some(uids) = self.waiters.remove(&p) {
            for uid in uids {
                if let Some(e) = self.entries.get_mut(&uid) {
                    // An entry may wait on `p` through both source slots.
                    let n = e.srcs.iter().flatten().filter(|s| **s == p).count() as u8;
                    e.waiting = e.waiting.saturating_sub(n.max(1).min(e.waiting));
                }
            }
        }
    }

    /// Scans ready entries oldest-first and offers each to `issue`, which
    /// returns `true` to accept (the entry is removed) or `false` on a
    /// structural hazard (the entry stays). Stops after `max` acceptances.
    /// Returns the number issued.
    pub fn select(&mut self, max: usize, mut issue: impl FnMut(K, usize) -> bool) -> usize {
        let mut taken = Vec::new();
        let mut n = 0;
        for (&uid, e) in self.entries.iter() {
            if n >= max {
                break;
            }
            if e.waiting == 0 && issue(uid, e.tid) {
                taken.push(uid);
                n += 1;
            }
        }
        for uid in taken {
            self.entries.remove(&uid);
        }
        n
    }

    /// Removes every entry for which `pred(uid, tid)` holds (squash).
    pub fn squash(&mut self, pred: impl Fn(K, usize) -> bool) {
        self.entries.retain(|&uid, e| !pred(uid, e.tid));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prf_with(n: usize) -> PhysRegFile {
        PhysRegFile::new(n)
    }

    #[test]
    fn immediate_ready_issue() {
        let mut prf = prf_with(4);
        let a = prf.alloc_ready(1).unwrap();
        let mut iq = IssueQueue::new(8);
        assert!(iq.insert(1, 0, [Some(a), None], &prf));
        let mut got = Vec::new();
        iq.select(4, |uid, _| {
            got.push(uid);
            true
        });
        assert_eq!(got, vec![1]);
        assert!(iq.is_empty());
    }

    #[test]
    fn waits_for_wakeup() {
        let mut prf = prf_with(4);
        let a = prf.alloc().unwrap(); // not ready
        let mut iq = IssueQueue::new(8);
        iq.insert(1, 0, [Some(a), None], &prf);
        assert_eq!(iq.select(4, |_, _| true), 0);
        prf.write(a, 9);
        iq.wakeup(a);
        assert_eq!(iq.select(4, |_, _| true), 1);
    }

    #[test]
    fn oldest_first_selection_and_structural_reject() {
        let mut prf = prf_with(4);
        let a = prf.alloc_ready(0).unwrap();
        let mut iq = IssueQueue::new(8);
        iq.insert(5, 0, [Some(a), None], &prf);
        iq.insert(3, 1, [None, None], &prf);
        let mut order = Vec::new();
        iq.select(4, |uid, _| {
            order.push(uid);
            uid != 3 // reject 3 (structural hazard), accept 5
        });
        assert_eq!(order, vec![3, 5]);
        assert_eq!(iq.len(), 1, "rejected entry remains");
        assert_eq!(iq.select(4, |uid, _| uid == 3), 1);
    }

    #[test]
    fn squash_by_threadlet() {
        let prf = prf_with(4);
        let mut iq = IssueQueue::new(8);
        iq.insert(1, 0, [None, None], &prf);
        iq.insert(2, 1, [None, None], &prf);
        iq.insert(3, 1, [None, None], &prf);
        iq.squash(|_, tid| tid == 1);
        assert_eq!(iq.len(), 1);
    }

    #[test]
    fn capacity_limit() {
        let prf = prf_with(4);
        let mut iq = IssueQueue::new(2);
        assert!(iq.insert(1, 0, [None, None], &prf));
        assert!(iq.insert(2, 0, [None, None], &prf));
        assert!(!iq.insert(3, 0, [None, None], &prf));
        assert!(iq.is_full());
    }

    #[test]
    fn same_register_in_both_sources() {
        let mut prf = prf_with(4);
        let a = prf.alloc().unwrap();
        let mut iq = IssueQueue::new(8);
        iq.insert(1, 0, [Some(a), Some(a)], &prf);
        assert_eq!(iq.select(4, |_, _| true), 0);
        prf.write(a, 1);
        iq.wakeup(a);
        assert_eq!(iq.select(4, |_, _| true), 1);
    }
}
