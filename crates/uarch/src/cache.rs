//! Cache and memory hierarchy timing model.
//!
//! Tag-only set-associative caches with LRU replacement, MSHR-limited miss
//! handling, a serialized DRAM channel, and stride prefetchers, matching the
//! memory system of Table 1. The hierarchy models *timing only*: data always
//! lives in the architectural [`lf_isa::Memory`] image (or the SSB for
//! speculative threadlets).

use crate::config::{CacheConfig, MemConfig};
use crate::prefetch::StridePrefetcher;
use lf_stats::Counters;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    last_used: u64,
    valid: bool,
}

/// A tag-only set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not describe at least one set.
    pub fn new(cfg: CacheConfig) -> Cache {
        let num_sets = cfg.size / (cfg.ways * cfg.line);
        assert!(num_sets >= 1, "cache too small for its geometry");
        Cache {
            cfg,
            sets: vec![vec![Line { tag: 0, last_used: 0, valid: false }; cfg.ways]; num_sets],
            accesses: 0,
            misses: 0,
        }
    }

    /// The line address (address divided by line size) of a byte address.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr / self.cfg.line as u64
    }

    fn set_of(&self, line_addr: u64) -> usize {
        (line_addr % self.sets.len() as u64) as usize
    }

    /// Looks up `line_addr`, updating LRU on hit. Returns whether it hit.
    pub fn access(&mut self, line_addr: u64, now: u64) -> bool {
        self.accesses += 1;
        let set = self.set_of(line_addr);
        for l in self.sets[set].iter_mut() {
            if l.valid && l.tag == line_addr {
                l.last_used = now;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Checks residency without updating LRU or statistics.
    pub fn probe(&self, line_addr: u64) -> bool {
        let set = self.set_of(line_addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == line_addr)
    }

    /// Fills `line_addr`, evicting the LRU way. Returns the evicted line
    /// address, if a valid line was displaced.
    pub fn fill(&mut self, line_addr: u64, now: u64) -> Option<u64> {
        let set = self.set_of(line_addr);
        if self.sets[set].iter().any(|l| l.valid && l.tag == line_addr) {
            return None; // already resident (racing fills)
        }
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_used + 1 } else { 0 })
            .expect("at least one way");
        let evicted = victim.valid.then_some(victim.tag);
        *victim = Line { tag: line_addr, last_used: now, valid: true };
        evicted
    }

    /// Warm-installs `line_addr` without touching access/miss statistics:
    /// fills the line if absent, or refreshes its LRU stamp if already
    /// resident. Used by checkpoint restore to replay a functional-warming
    /// access stream into the tags — the stream establishes *state*
    /// (residency and recency), never *events*, so the measured window's
    /// hit/miss counts start from zero.
    pub fn warm_fill(&mut self, line_addr: u64, now: u64) {
        let set = self.set_of(line_addr);
        for l in self.sets[set].iter_mut() {
            if l.valid && l.tag == line_addr {
                l.last_used = now;
                return;
            }
        }
        self.fill(line_addr, now);
    }

    /// Invalidates `line_addr` if resident.
    pub fn invalidate(&mut self, line_addr: u64) {
        let set = self.set_of(line_addr);
        for l in self.sets[set].iter_mut() {
            if l.valid && l.tag == line_addr {
                l.valid = false;
            }
        }
    }

    /// (accesses, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.accesses, self.misses)
    }

    /// This cache's line size in bytes.
    pub fn line_size(&self) -> usize {
        self.cfg.line
    }
}

/// Miss-status holding registers: a bounded set of outstanding line misses.
#[derive(Debug, Clone)]
struct Mshr {
    capacity: usize,
    outstanding: HashMap<u64, u64>, // line -> ready cycle
}

impl Mshr {
    fn new(capacity: usize) -> Mshr {
        Mshr { capacity, outstanding: HashMap::new() }
    }

    fn sweep(&mut self, now: u64) {
        self.outstanding.retain(|_, ready| *ready > now);
    }

    /// If the line has an in-flight miss (ready in the future), returns its
    /// ready cycle so the new request merges into it.
    fn merge(&self, line: u64, now: u64) -> Option<u64> {
        self.outstanding.get(&line).copied().filter(|&r| r > now)
    }

    /// Allocates an entry; if full, returns the earliest cycle at which one
    /// frees so the caller can serialize behind it.
    fn alloc(&mut self, line: u64, ready: u64, now: u64) -> Result<(), u64> {
        self.sweep(now);
        if self.outstanding.len() < self.capacity {
            self.outstanding.insert(line, ready);
            Ok(())
        } else {
            Err(self.outstanding.values().copied().min().unwrap_or(now + 1))
        }
    }
}

/// Kinds of memory-system requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (L1I path).
    Fetch,
    /// Data load.
    Load,
    /// Data store (write-allocate).
    Store,
    /// Hardware prefetch (does not recursively prefetch).
    Prefetch,
}

/// The three-level memory hierarchy timing model.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    cfg: MemConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l1i_mshr: Mshr,
    l1d_mshr: Mshr,
    l2_mshr: Mshr,
    l1d_pref: StridePrefetcher,
    l2_pref: StridePrefetcher,
    dram_busy_until: u64,
    counters: Counters,
}

/// Cycles one DRAM line transfer occupies the channel (64 B at 25 B/cycle).
const DRAM_OCCUPANCY: u64 = 3;

impl MemHierarchy {
    /// Creates the hierarchy from its configuration.
    pub fn new(cfg: MemConfig) -> MemHierarchy {
        MemHierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l1i_mshr: Mshr::new(cfg.l1i.mshrs),
            l1d_mshr: Mshr::new(cfg.l1d.mshrs),
            l2_mshr: Mshr::new(cfg.l2.mshrs),
            l1d_pref: StridePrefetcher::new(64, cfg.l1d_prefetch_degree),
            l2_pref: StridePrefetcher::new(128, cfg.l2_prefetch_degree),
            dram_busy_until: 0,
            counters: Counters::new(),
            cfg,
        }
    }

    /// Event counters (l2_accesses, l2_misses, prefetches, …).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The L1D line size in bytes.
    pub fn l1d_line(&self) -> usize {
        self.cfg.l1d.line
    }

    /// L1I/L1D/L2 (accesses, misses).
    pub fn cache_stats(&self) -> [(u64, u64); 3] {
        [self.l1i.stats(), self.l1d.stats(), self.l2.stats()]
    }

    fn dram_access(&mut self, start: u64) -> u64 {
        let begin = start.max(self.dram_busy_until);
        self.dram_busy_until = begin + DRAM_OCCUPANCY;
        self.counters.inc("dram_accesses");
        begin + self.cfg.dram_latency
    }

    /// Accesses the L2 (and DRAM below it) for `line` (in L1-line units),
    /// returning the cycle the line is available to the L1.
    fn access_l2(&mut self, pc: u64, line: u64, start: u64, kind: AccessKind) -> u64 {
        self.counters.inc("l2_accesses");
        let hit = self.l2.access(line, start);
        let ready = if hit {
            // A resident tag may still have its data in flight.
            let base = start + self.cfg.l2.hit_latency;
            self.l2_mshr.merge(line, start).map_or(base, |r| r.max(base))
        } else {
            self.counters.inc("l2_misses");
            if let Some(r) = self.l2_mshr.merge(line, start) {
                r
            } else {
                let mut begin = start + self.cfg.l2.hit_latency;
                if let Err(free_at) = self.l2_mshr.alloc(line, 0, start) {
                    begin = begin.max(free_at);
                }
                let ready = self.dram_access(begin);
                // Record the true ready time for subsequent merges.
                let _ = self.l2_mshr.alloc(line, ready, start);
                self.l2.fill(line, ready);
                // Neighbor prefetcher (Table 1): pull in the next line on a
                // demand miss; order-insensitive, so threadlet interleaving
                // cannot defeat it.
                if kind != AccessKind::Prefetch && self.cfg.l2_prefetch_degree > 0 {
                    let nb = line + 1;
                    if !self.l2.probe(nb) && self.l2_mshr.merge(nb, start).is_none() {
                        self.counters.inc("l2_neighbor_prefetches");
                        let r = self.dram_access(ready);
                        self.l2.fill(nb, r);
                    }
                }
                ready
            }
        };
        // L2 stride prefetcher trains on demand L2 traffic.
        if kind != AccessKind::Prefetch {
            let preds = self.l2_pref.train(pc, line);
            for p in preds {
                if !self.l2.probe(p) {
                    self.counters.inc("l2_prefetches");
                    let begin = ready.max(self.dram_busy_until);
                    self.dram_busy_until = begin + DRAM_OCCUPANCY;
                    self.l2.fill(p, begin + self.cfg.dram_latency);
                }
            }
        }
        ready
    }

    /// Performs a data access and returns the cycle its data (or write
    /// acknowledgement) is ready.
    pub fn access_data(&mut self, pc: u64, addr: u64, kind: AccessKind, now: u64) -> u64 {
        let line = self.l1d.line_addr(addr);
        let hit = self.l1d.access(line, now);
        let ready = if hit {
            let base = now + self.cfg.l1d.hit_latency;
            self.l1d_mshr.merge(line, now).map_or(base, |r| r.max(base))
        } else if let Some(r) = self.l1d_mshr.merge(line, now) {
            r.max(now + self.cfg.l1d.hit_latency)
        } else {
            let mut start = now + self.cfg.l1d.hit_latency;
            if let Err(free_at) = self.l1d_mshr.alloc(line, 0, now) {
                self.counters.inc("l1d_mshr_full");
                start = start.max(free_at);
            }
            let ready = self.access_l2(pc, line, start, kind);
            let _ = self.l1d_mshr.alloc(line, ready, now);
            self.l1d.fill(line, ready);
            ready
        };
        if kind != AccessKind::Prefetch {
            let preds = self.l1d_pref.train(pc, line);
            for p in preds {
                if !self.l1d.probe(p) {
                    self.counters.inc("l1d_prefetches");
                    let r = self.access_l2(pc, p, ready, AccessKind::Prefetch);
                    self.l1d.fill(p, r);
                }
            }
        }
        ready
    }

    /// Warm-installs the data line containing `addr` from a recorded
    /// functional-warming event: fills (or LRU-touches) the L1D and L2
    /// tags and trains the stride prefetchers, warm-installing their
    /// predictions too. `seq` is the event's position in the recorded
    /// stream, used as the LRU clock so recency survives the replay.
    /// No counters, MSHRs, or DRAM timing are touched — warming
    /// establishes state, not events.
    pub fn warm_data(&mut self, pc: u64, addr: u64, seq: u64) {
        let line = self.l1d.line_addr(addr);
        self.l1d.warm_fill(line, seq);
        self.l2.warm_fill(line, seq);
        for p in self.l1d_pref.train(pc, line) {
            self.l1d.warm_fill(p, seq);
            self.l2.warm_fill(p, seq);
        }
        for p in self.l2_pref.train(pc, line) {
            self.l2.warm_fill(p, seq);
        }
    }

    /// Warm-installs the instruction line containing byte address `addr`
    /// from a recorded fetch event (L1I and L2 tags; see
    /// [`MemHierarchy::warm_data`] for the replay contract).
    pub fn warm_inst(&mut self, addr: u64, seq: u64) {
        let line = self.l1i.line_addr(addr);
        self.l1i.warm_fill(line, seq);
        self.l2.warm_fill(line, seq);
    }

    /// Performs an instruction fetch of the line containing byte address
    /// `addr` and returns its ready cycle.
    pub fn access_inst(&mut self, addr: u64, now: u64) -> u64 {
        let line = self.l1i.line_addr(addr);
        if self.l1i.access(line, now) {
            let base = now + self.cfg.l1i.hit_latency;
            return self.l1i_mshr.merge(line, now).map_or(base, |r| r.max(base));
        }
        if let Some(r) = self.l1i_mshr.merge(line, now) {
            return r.max(now + self.cfg.l1i.hit_latency);
        }
        let mut start = now + self.cfg.l1i.hit_latency;
        if let Err(free_at) = self.l1i_mshr.alloc(line, 0, now) {
            start = start.max(free_at);
        }
        let ready = self.access_l2(addr, line, start, AccessKind::Fetch);
        let _ = self.l1i_mshr.alloc(line, ready, now);
        self.l1i.fill(line, ready);
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_mem() -> MemHierarchy {
        MemHierarchy::new(MemConfig {
            l1i: CacheConfig { size: 1024, ways: 2, line: 64, hit_latency: 1, mshrs: 4 },
            l1d: CacheConfig { size: 1024, ways: 2, line: 64, hit_latency: 2, mshrs: 2 },
            l2: CacheConfig { size: 8192, ways: 4, line: 64, hit_latency: 11, mshrs: 4 },
            dram_latency: 100,
            l1d_prefetch_degree: 0,
            l2_prefetch_degree: 0,
        })
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c =
            Cache::new(CacheConfig { size: 256, ways: 2, line: 64, hit_latency: 1, mshrs: 1 });
        // 2 sets x 2 ways. Lines 0, 2, 4 all map to set 0.
        c.fill(0, 1);
        c.fill(2, 2);
        assert!(c.probe(0) && c.probe(2));
        c.access(0, 3); // 0 most recent; 2 is LRU
        let evicted = c.fill(4, 4);
        assert_eq!(evicted, Some(2));
        assert!(c.probe(0) && c.probe(4) && !c.probe(2));
    }

    #[test]
    fn hit_after_miss_and_fill() {
        let mut m = small_mem();
        let t0 = m.access_data(0, 0x1000, AccessKind::Load, 0);
        assert!(t0 >= 100, "cold miss goes to DRAM: {t0}");
        let t1 = m.access_data(0, 0x1008, AccessKind::Load, t0);
        assert_eq!(t1, t0 + 2, "same line now hits in L1D");
    }

    #[test]
    fn mshr_merges_same_line() {
        let mut m = small_mem();
        let t0 = m.access_data(0, 0x2000, AccessKind::Load, 0);
        let t1 = m.access_data(0, 0x2010, AccessKind::Load, 1);
        assert_eq!(t1, t0, "second miss to the same line merges into the MSHR");
    }

    #[test]
    fn mshr_pressure_serializes() {
        let mut m = small_mem();
        // 3 distinct lines with 2 L1D MSHRs: the third must wait.
        let a = m.access_data(0, 0x0000, AccessKind::Load, 0);
        let b = m.access_data(0, 0x4000, AccessKind::Load, 0);
        let c = m.access_data(0, 0x8000, AccessKind::Load, 0);
        assert!(c > a.min(b), "third miss serialized behind an MSHR");
    }

    #[test]
    fn l2_hit_is_faster_than_dram() {
        let mut m = small_mem();
        let t0 = m.access_data(0, 0x3000, AccessKind::Load, 0);
        // Evict from tiny L1D by touching other sets... simpler: invalidate.
        m.l1d.invalidate(m.l1d.line_addr(0x3000));
        let t1 = m.access_data(0, 0x3000, AccessKind::Load, t0);
        assert!(t1 - t0 < 100, "L2 hit after L1 eviction: {}", t1 - t0);
        assert!(t1 - t0 >= 11);
    }

    #[test]
    fn prefetcher_counts_and_covers_strides() {
        let mut m = MemHierarchy::new(MemConfig { l1d_prefetch_degree: 2, ..MemConfig::default() });
        let mut now = 0;
        for i in 0..32u64 {
            now = m.access_data(0x10, 0x10000 + i * 64, AccessKind::Load, now);
        }
        assert!(m.counters().get("l1d_prefetches") > 0);
        // Steady-state accesses should mostly hit thanks to the prefetcher.
        let (acc, miss) = m.l1d.stats();
        assert!(miss * 3 < acc, "prefetcher should cover most of the stream: {miss}/{acc}");
    }

    #[test]
    fn warming_installs_state_without_events() {
        let mut m = small_mem();
        m.warm_data(0x10, 0x1000, 0);
        m.warm_data(0x10, 0x2000, 1);
        m.warm_inst(0x100, 2);
        // No statistics were recorded by warming.
        assert_eq!(m.cache_stats(), [(0, 0); 3]);
        assert_eq!(m.counters().get("dram_accesses"), 0);
        // But the warmed lines now hit at L1 latency.
        let t = m.access_data(0x10, 0x1000, AccessKind::Load, 10);
        assert_eq!(t, 12, "warmed data line hits in L1D");
        let ti = m.access_inst(0x100, 10);
        assert_eq!(ti, 11, "warmed inst line hits in L1I");
    }

    #[test]
    fn warm_fill_refreshes_lru() {
        let mut c =
            Cache::new(CacheConfig { size: 256, ways: 2, line: 64, hit_latency: 1, mshrs: 1 });
        // Lines 0, 2, 4 all map to set 0 (2 sets x 2 ways).
        c.warm_fill(0, 1);
        c.warm_fill(2, 2);
        c.warm_fill(0, 3); // refresh 0; 2 becomes LRU
        let evicted = c.fill(4, 4);
        assert_eq!(evicted, Some(2), "warm touch protected line 0");
        assert_eq!(c.stats(), (0, 0), "warming never counts");
    }

    #[test]
    fn fetch_path_hits_l1i() {
        let mut m = small_mem();
        let t0 = m.access_inst(0x100, 0);
        let t1 = m.access_inst(0x104, t0);
        assert_eq!(t1, t0 + 1);
    }
}
