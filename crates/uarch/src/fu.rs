//! Functional-unit pools with initiation-interval modeling.
//!
//! Pipelined units accept a new operation every cycle; divide/sqrt units are
//! unpipelined and stay busy for the operation's full latency.

use crate::config::FuConfig;
use lf_isa::FuClass;

#[derive(Debug, Clone)]
struct Pool {
    busy_until: Vec<u64>,
}

impl Pool {
    fn new(count: usize) -> Pool {
        Pool { busy_until: vec![0; count] }
    }

    fn try_issue(&mut self, now: u64, occupy: u64) -> bool {
        if let Some(u) = self.busy_until.iter_mut().find(|u| **u <= now) {
            *u = now + occupy;
            true
        } else {
            false
        }
    }
}

/// All execution pipes of the core.
#[derive(Debug, Clone)]
pub struct FuPools {
    int_alu: Pool,
    int_mul_div: Pool,
    fp: Pool,
    fp_div_sqrt: Pool,
    load: Pool,
    store: Pool,
}

impl FuPools {
    /// Creates the pools from their configuration.
    pub fn new(cfg: &FuConfig) -> FuPools {
        FuPools {
            int_alu: Pool::new(cfg.int_alu),
            int_mul_div: Pool::new(cfg.int_mul_div),
            fp: Pool::new(cfg.fp),
            fp_div_sqrt: Pool::new(cfg.fp_div_sqrt),
            load: Pool::new(cfg.load),
            store: Pool::new(cfg.store),
        }
    }

    /// Attempts to claim a unit of `class` at cycle `now` for an operation of
    /// `latency` cycles. Pipelined classes occupy their unit for one cycle;
    /// divide/sqrt classes occupy it for the full latency.
    ///
    /// Returns `false` if every unit of the class is busy (structural
    /// hazard); the instruction retries next cycle. `FuClass::None` always
    /// succeeds.
    pub fn try_issue(&mut self, class: FuClass, now: u64, latency: u64) -> bool {
        match class {
            FuClass::IntAlu => self.int_alu.try_issue(now, 1),
            // Integer divide is unpipelined; multiply is pipelined. Treat
            // long-latency ops (> 3 cycles) on this pool as unpipelined.
            FuClass::IntMulDiv => {
                let occ = if latency > 3 { latency } else { 1 };
                self.int_mul_div.try_issue(now, occ)
            }
            FuClass::Fp => self.fp.try_issue(now, 1),
            FuClass::FpDivSqrt => self.fp_div_sqrt.try_issue(now, latency),
            FuClass::Load => self.load.try_issue(now, 1),
            FuClass::Store => self.store.try_issue(now, 1),
            FuClass::None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FuPools {
        FuPools::new(&FuConfig {
            int_alu: 2,
            int_mul_div: 1,
            fp: 1,
            fp_div_sqrt: 1,
            load: 1,
            store: 1,
        })
    }

    #[test]
    fn pipelined_alu_reissues_every_cycle() {
        let mut fu = tiny();
        assert!(fu.try_issue(FuClass::IntAlu, 0, 1));
        assert!(fu.try_issue(FuClass::IntAlu, 0, 1));
        assert!(!fu.try_issue(FuClass::IntAlu, 0, 1), "only 2 ALUs");
        assert!(fu.try_issue(FuClass::IntAlu, 1, 1), "free again next cycle");
    }

    #[test]
    fn divider_blocks_for_full_latency() {
        let mut fu = tiny();
        assert!(fu.try_issue(FuClass::FpDivSqrt, 0, 12));
        assert!(!fu.try_issue(FuClass::FpDivSqrt, 5, 12));
        assert!(fu.try_issue(FuClass::FpDivSqrt, 12, 12));
    }

    #[test]
    fn int_divide_unpipelined_multiply_pipelined() {
        let mut fu = tiny();
        assert!(fu.try_issue(FuClass::IntMulDiv, 0, 12)); // divide
        assert!(!fu.try_issue(FuClass::IntMulDiv, 1, 3)); // multiply blocked
        let mut fu = tiny();
        assert!(fu.try_issue(FuClass::IntMulDiv, 0, 3));
        assert!(fu.try_issue(FuClass::IntMulDiv, 1, 3), "multiply pipelines");
    }

    #[test]
    fn none_class_never_blocks() {
        let mut fu = tiny();
        for _ in 0..100 {
            assert!(fu.try_issue(FuClass::None, 0, 1));
        }
    }
}
