//! Stride prefetcher (Table 1: L1D "stride (degree: 2)", L2 "stride
//! (degree: 8) and neighbor prefetchers").
//!
//! A PC-indexed reference-prediction table. Because LoopFrog interleaves
//! accesses from several threadlets, the same load PC is seen with
//! out-of-order addresses; the predictor therefore accepts any delta that
//! is a small multiple of the learned stride as confirmation and prefetches
//! ahead of the *furthest* line seen, rather than demanding strictly
//! consecutive strides (which inter-threadlet interleaving would destroy).

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    pc_tag: u64,
    last_line: u64,
    /// First line seen since (re)allocation; fixes the stream direction.
    origin: u64,
    /// Furthest line seen in the stride direction (prefetch frontier).
    frontier: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// Largest multiple of the learned stride accepted as an in-stream access.
const TOLERANCE: i64 = 8;

/// PC-indexed, interleaving-tolerant stride prefetcher.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    entries: Vec<StrideEntry>,
    degree: usize,
}

impl StridePrefetcher {
    /// Creates a prefetcher with `entries` table slots issuing `degree`
    /// prefetches when confident. `degree == 0` disables prefetching.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, degree: usize) -> StridePrefetcher {
        assert!(entries.is_power_of_two());
        StridePrefetcher { entries: vec![StrideEntry::default(); entries], degree }
    }

    /// Trains on a demand access by `pc` to `line` (line-address units) and
    /// returns the line addresses to prefetch.
    pub fn train(&mut self, pc: u64, line: u64) -> Vec<u64> {
        if self.degree == 0 {
            return Vec::new();
        }
        let slot = (pc % self.entries.len() as u64) as usize;
        let e = &mut self.entries[slot];
        if !e.valid || e.pc_tag != pc {
            *e = StrideEntry {
                pc_tag: pc,
                last_line: line,
                origin: line,
                frontier: line,
                stride: 0,
                confidence: 0,
                valid: true,
            };
            return Vec::new();
        }
        let delta = line as i64 - e.last_line as i64;
        if delta == 0 {
            return Vec::new(); // same line: no information
        }
        let confirms =
            e.stride != 0 && delta % e.stride == 0 && (delta / e.stride).abs() <= TOLERANCE;
        if confirms {
            e.confidence = (e.confidence + 1).min(3);
            // Advance the frontier in the stride direction.
            let ahead = if e.stride > 0 { line > e.frontier } else { line < e.frontier };
            if ahead {
                e.frontier = line;
            }
        } else {
            e.confidence = e.confidence.saturating_sub(1);
            if e.confidence == 0 {
                // Adopt the smallest step as the stride magnitude, with the
                // sign of the stream's long-run direction: interleaved
                // threadlets jitter backwards without reversing the stream.
                let dir = line as i64 - e.origin as i64;
                let mag = delta.abs();
                e.stride = if dir < 0 { -mag } else { mag };
                e.frontier = line;
            }
        }
        e.last_line = line;
        if e.confidence >= 2 && e.stride != 0 {
            let base = e.frontier;
            (1..=self.degree as i64).filter_map(|k| base.checked_add_signed(e.stride * k)).collect()
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_unit_stride() {
        let mut p = StridePrefetcher::new(16, 2);
        let mut out = Vec::new();
        for i in 0..6 {
            out = p.train(0x40, 100 + i);
        }
        assert_eq!(out, vec![106, 107]);
    }

    #[test]
    fn learns_negative_stride() {
        let mut p = StridePrefetcher::new(16, 1);
        let mut out = Vec::new();
        for i in 0..6u64 {
            out = p.train(0x40, 100 - i * 2);
        }
        assert_eq!(out, vec![88]);
    }

    #[test]
    fn tolerates_interleaved_threadlet_order() {
        // Four threadlets issue the same-PC stream out of order:
        // 100, 102, 101, 104, 103, 106, 105, ... (stride 1, jitter ±2).
        let mut p = StridePrefetcher::new(16, 2);
        let seq = [100u64, 102, 101, 104, 103, 106, 105, 108, 107, 110];
        let mut fired = 0;
        let mut max_target = 0;
        for &l in &seq {
            let out = p.train(0x40, l);
            if !out.is_empty() {
                fired += 1;
                max_target = max_target.max(*out.iter().max().unwrap());
            }
        }
        assert!(fired >= 5, "interleaving must not destroy confidence ({fired})");
        assert!(max_target > 110, "prefetches ahead of the frontier");
    }

    #[test]
    fn no_prefetch_for_random_pattern() {
        let mut p = StridePrefetcher::new(16, 4);
        for line in [5u64, 900, 33, 1022, 7, 512] {
            assert!(p.train(0x40, line).is_empty());
        }
    }

    #[test]
    fn degree_zero_disables() {
        let mut p = StridePrefetcher::new(16, 0);
        for i in 0..10 {
            assert!(p.train(0x40, i).is_empty());
        }
    }

    #[test]
    fn pc_aliasing_reallocates() {
        let mut p = StridePrefetcher::new(2, 1);
        for i in 0..5 {
            p.train(0x2, 10 + i);
        }
        assert!(p.train(0x4, 1000).is_empty());
    }
}
