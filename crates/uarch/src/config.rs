//! Microarchitecture configuration, mirroring Table 1 of the paper
//! ("Simulation parameters for an aggressive 8-wide core").

/// Functional-unit pool sizes (Table 1: "7 ALU+Branch, 2 ALU+Mul+Div,
/// 4 SIMD+FP (2 Div/Sqrt), 4 Load, 2 Store pipes").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Simple integer ALU / branch pipes.
    pub int_alu: usize,
    /// Integer multiply/divide pipes.
    pub int_mul_div: usize,
    /// FP/SIMD pipes.
    pub fp: usize,
    /// FP divide/sqrt pipes (subset of FP issue bandwidth).
    pub fp_div_sqrt: usize,
    /// Load pipes.
    pub load: usize,
    /// Store pipes.
    pub store: usize,
}

impl Default for FuConfig {
    fn default() -> FuConfig {
        FuConfig { int_alu: 7, int_mul_div: 2, fp: 4, fp_div_sqrt: 2, load: 4, store: 2 }
    }
}

/// Core pipeline configuration (Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Front-end fetch/decode/rename width in instructions per cycle.
    pub width: usize,
    /// Commit width in instructions per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries, dynamically shared between threadlets.
    pub rob_size: usize,
    /// Issue-queue entries.
    pub iq_size: usize,
    /// Load-queue entries.
    pub lq_size: usize,
    /// Store-queue entries.
    pub sq_size: usize,
    /// Per-threadlet fetch-queue entries (duplicated per context).
    pub fetch_queue_size: usize,
    /// Integer physical registers.
    pub int_phys_regs: usize,
    /// Floating-point physical registers.
    pub fp_phys_regs: usize,
    /// Functional-unit pools.
    pub fu: FuConfig,
    /// Front-end redirect penalty in cycles (fetch→rename refill depth).
    pub frontend_latency: u64,
    /// Number of hardware threadlet contexts.
    pub threadlets: usize,
}

impl Default for CoreConfig {
    /// The paper's 8-wide, 4-threadlet configuration.
    fn default() -> CoreConfig {
        CoreConfig {
            width: 8,
            commit_width: 8,
            rob_size: 1024,
            iq_size: 384,
            lq_size: 256,
            sq_size: 256,
            fetch_queue_size: 32,
            int_phys_regs: 1024,
            fp_phys_regs: 768,
            fu: FuConfig::default(),
            frontend_latency: 10,
            threadlets: 4,
        }
    }
}

impl CoreConfig {
    /// The baseline single-threadlet configuration of the same core (hints
    /// treated as NOPs, no speculation).
    pub fn baseline() -> CoreConfig {
        CoreConfig { threadlets: 1, ..CoreConfig::default() }
    }

    /// A narrower/wider variant of the default core for the Figure 1 width
    /// sweep; issue resources are scaled roughly with width.
    pub fn with_width(width: usize) -> CoreConfig {
        let d = CoreConfig::default();
        let scale = |x: usize| (x * width).div_ceil(8).max(1);
        CoreConfig {
            width,
            commit_width: width,
            rob_size: scale(d.rob_size),
            iq_size: scale(d.iq_size),
            lq_size: scale(d.lq_size),
            sq_size: scale(d.sq_size),
            int_phys_regs: scale(d.int_phys_regs).max(NUM_ARCH_REGS_PLUS_MARGIN),
            fp_phys_regs: scale(d.fp_phys_regs).max(NUM_ARCH_REGS_PLUS_MARGIN),
            fu: FuConfig {
                int_alu: scale(d.fu.int_alu),
                int_mul_div: scale(d.fu.int_mul_div).max(1),
                fp: scale(d.fu.fp).max(1),
                fp_div_sqrt: scale(d.fu.fp_div_sqrt).max(1),
                load: scale(d.fu.load).max(1),
                store: scale(d.fu.store).max(1),
            },
            ..d
        }
    }

    /// Total physical registers.
    pub fn total_phys_regs(&self) -> usize {
        self.int_phys_regs + self.fp_phys_regs
    }
}

/// Physical register head-room needed beyond the architectural registers.
const NUM_ARCH_REGS_PLUS_MARGIN: usize = 128;

/// One cache level's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// Miss-status holding registers (outstanding misses).
    pub mshrs: usize,
}

/// Memory system configuration (Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Instruction L1.
    pub l1i: CacheConfig,
    /// Data L1.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// DRAM access latency in cycles (≈60 ns at 4 GHz).
    pub dram_latency: u64,
    /// L1D stride-prefetcher degree (0 disables it).
    pub l1d_prefetch_degree: usize,
    /// L2 stride-prefetcher degree (0 disables it).
    pub l2_prefetch_degree: usize,
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig {
            l1i: CacheConfig { size: 64 << 10, ways: 4, line: 64, hit_latency: 1, mshrs: 16 },
            l1d: CacheConfig { size: 64 << 10, ways: 4, line: 64, hit_latency: 2, mshrs: 10 },
            l2: CacheConfig { size: 4 << 20, ways: 8, line: 64, hit_latency: 11, mshrs: 32 },
            dram_latency: 240,
            l1d_prefetch_degree: 2,
            l2_prefetch_degree: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_1() {
        let c = CoreConfig::default();
        assert_eq!(c.width, 8);
        assert_eq!(c.rob_size, 1024);
        assert_eq!(c.iq_size, 384);
        assert_eq!(c.threadlets, 4);
        assert_eq!(c.total_phys_regs(), 1024 + 768);
    }

    #[test]
    fn width_sweep_scales_window() {
        let c4 = CoreConfig::with_width(4);
        assert_eq!(c4.width, 4);
        assert_eq!(c4.rob_size, 512);
        let c10 = CoreConfig::with_width(10);
        assert_eq!(c10.rob_size, 1280);
        assert!(c10.fu.int_alu >= 8);
    }

    #[test]
    fn baseline_has_one_threadlet() {
        assert_eq!(CoreConfig::baseline().threadlets, 1);
        assert_eq!(CoreConfig::baseline().rob_size, CoreConfig::default().rob_size);
    }
}
