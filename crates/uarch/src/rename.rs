//! Register renaming: physical register file, per-threadlet rename maps, and
//! reference-counted free-list management.
//!
//! Reference counting is what makes LoopFrog-style sharing cheap: a rename
//! map, a spawned threadlet's inherited map, and a checkpoint all just hold
//! references to the same physical registers (paper §4: "Checkpoints can be
//! taken by copying the register rename map and preventing physical registers
//! from being recycled").

use lf_isa::NUM_ARCH_REGS;

/// A physical register name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg(pub u32);

#[derive(Debug, Clone, Copy)]
struct PhysEntry {
    value: u64,
    ready: bool,
    refcnt: u32,
}

/// The physical register file with reference-counted recycling.
#[derive(Debug, Clone)]
pub struct PhysRegFile {
    entries: Vec<PhysEntry>,
    free: Vec<PhysReg>,
}

impl PhysRegFile {
    /// Creates a file of `size` physical registers, all free.
    pub fn new(size: usize) -> PhysRegFile {
        PhysRegFile {
            entries: vec![PhysEntry { value: 0, ready: false, refcnt: 0 }; size],
            free: (0..size as u32).rev().map(PhysReg).collect(),
        }
    }

    /// Number of free physical registers.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Allocates a not-ready register with refcount 1, or `None` if the file
    /// is exhausted (the caller stalls rename).
    pub fn alloc(&mut self) -> Option<PhysReg> {
        let p = self.free.pop()?;
        self.entries[p.0 as usize] = PhysEntry { value: 0, ready: false, refcnt: 1 };
        Some(p)
    }

    /// Allocates a register already holding `value` and marked ready (used
    /// for predicted induction-variable values in iteration packing).
    pub fn alloc_ready(&mut self, value: u64) -> Option<PhysReg> {
        let p = self.alloc()?;
        self.entries[p.0 as usize].value = value;
        self.entries[p.0 as usize].ready = true;
        Some(p)
    }

    /// Adds a reference to `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is currently free (refcount zero).
    pub fn add_ref(&mut self, p: PhysReg) {
        let e = &mut self.entries[p.0 as usize];
        assert!(e.refcnt > 0, "add_ref on free register {p:?}");
        e.refcnt += 1;
    }

    /// Drops a reference to `p`, returning it to the free list at zero.
    ///
    /// # Panics
    ///
    /// Panics if `p` is already free.
    pub fn release(&mut self, p: PhysReg) {
        let e = &mut self.entries[p.0 as usize];
        assert!(e.refcnt > 0, "release of free register {p:?}");
        e.refcnt -= 1;
        if e.refcnt == 0 {
            self.free.push(p);
        }
    }

    /// Whether `p` has produced its value.
    #[inline]
    pub fn is_ready(&self, p: PhysReg) -> bool {
        self.entries[p.0 as usize].ready
    }

    /// Reads `p`'s value.
    ///
    /// In debug builds, asserts the register is ready.
    #[inline]
    pub fn read(&self, p: PhysReg) -> u64 {
        debug_assert!(self.entries[p.0 as usize].ready, "read of not-ready register");
        self.entries[p.0 as usize].value
    }

    /// Writes `p`'s value and marks it ready.
    #[inline]
    pub fn write(&mut self, p: PhysReg, value: u64) {
        let e = &mut self.entries[p.0 as usize];
        e.value = value;
        e.ready = true;
    }

    /// Overwrites the value of an already-ready register (packing repair of
    /// a mispredicted induction variable that no one has consumed yet).
    pub fn patch_value(&mut self, p: PhysReg, value: u64) {
        self.entries[p.0 as usize].value = value;
    }

    /// Current reference count of `p` (for assertions and tests).
    pub fn refcnt(&self, p: PhysReg) -> u32 {
        self.entries[p.0 as usize].refcnt
    }
}

/// A per-threadlet map from architectural to physical registers.
///
/// The map owns one reference to each mapped physical register. Cloning a
/// map (threadlet spawn, checkpoint) must go through
/// [`RenameMap::clone_with_refs`] so reference counts stay balanced.
#[derive(Debug, Clone)]
pub struct RenameMap {
    map: [PhysReg; NUM_ARCH_REGS],
}

impl RenameMap {
    /// Creates a map with every architectural register freshly allocated,
    /// value 0, ready. Consumes `NUM_ARCH_REGS` physical registers.
    ///
    /// # Panics
    ///
    /// Panics if the register file cannot supply enough registers.
    pub fn new_initial(prf: &mut PhysRegFile) -> RenameMap {
        RenameMap::new_with_values(prf, &[0; NUM_ARCH_REGS])
    }

    /// Creates a map seeded with the given architectural register values
    /// (warm start, e.g. resuming at a SimPoint interval boundary).
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than `NUM_ARCH_REGS` or the register
    /// file cannot supply enough registers.
    pub fn new_with_values(prf: &mut PhysRegFile, values: &[u64]) -> RenameMap {
        assert!(values.len() >= NUM_ARCH_REGS);
        let map = std::array::from_fn(|a| {
            prf.alloc_ready(values[a]).expect("physical register file too small for initial map")
        });
        RenameMap { map }
    }

    /// The physical register currently mapped to architectural `a`.
    #[inline]
    pub fn get(&self, a: usize) -> PhysReg {
        self.map[a]
    }

    /// Points architectural `a` at `p`, returning the previous mapping. The
    /// reference formerly owned by the map transfers to the caller (it goes
    /// into the renaming instruction's `old_phys` slot); the new mapping
    /// takes over the caller's reference to `p`.
    #[inline]
    pub fn set(&mut self, a: usize, p: PhysReg) -> PhysReg {
        std::mem::replace(&mut self.map[a], p)
    }

    /// Clones the map, adding one reference per mapped register.
    pub fn clone_with_refs(&self, prf: &mut PhysRegFile) -> RenameMap {
        for p in self.map {
            prf.add_ref(p);
        }
        RenameMap { map: self.map }
    }

    /// Releases every reference owned by this map. Call exactly once when a
    /// map (or checkpoint) is discarded.
    pub fn release_all(self, prf: &mut PhysRegFile) {
        for p in self.map {
            prf.release(p);
        }
    }

    /// Iterates `(arch_index, phys)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, PhysReg)> + '_ {
        self.map.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_roundtrip() {
        let mut prf = PhysRegFile::new(4);
        let a = prf.alloc().unwrap();
        let b = prf.alloc().unwrap();
        assert_eq!(prf.free_count(), 2);
        prf.release(a);
        assert_eq!(prf.free_count(), 3);
        prf.add_ref(b);
        prf.release(b);
        assert_eq!(prf.free_count(), 3, "still one ref on b");
        prf.release(b);
        assert_eq!(prf.free_count(), 4);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut prf = PhysRegFile::new(1);
        let _a = prf.alloc().unwrap();
        assert!(prf.alloc().is_none());
    }

    #[test]
    fn ready_and_values() {
        let mut prf = PhysRegFile::new(2);
        let a = prf.alloc().unwrap();
        assert!(!prf.is_ready(a));
        prf.write(a, 42);
        assert!(prf.is_ready(a));
        assert_eq!(prf.read(a), 42);
        let b = prf.alloc_ready(7).unwrap();
        assert_eq!(prf.read(b), 7);
    }

    #[test]
    fn rename_map_balances_refs() {
        let mut prf = PhysRegFile::new(NUM_ARCH_REGS * 2 + 8);
        let map = RenameMap::new_initial(&mut prf);
        let free_after_init = prf.free_count();
        let copy = map.clone_with_refs(&mut prf);
        assert_eq!(prf.free_count(), free_after_init, "clone adds refs, not registers");
        copy.release_all(&mut prf);
        assert_eq!(prf.free_count(), free_after_init);
        map.release_all(&mut prf);
        assert_eq!(prf.free_count(), NUM_ARCH_REGS * 2 + 8);
    }

    #[test]
    fn set_transfers_reference() {
        let mut prf = PhysRegFile::new(NUM_ARCH_REGS + 4);
        let mut map = RenameMap::new_initial(&mut prf);
        let fresh = prf.alloc().unwrap();
        let old = map.set(3, fresh);
        // Simulate instruction commit: the old mapping's reference dies.
        prf.release(old);
        map.release_all(&mut prf);
        assert_eq!(prf.free_count(), NUM_ARCH_REGS + 4);
    }

    #[test]
    #[should_panic]
    fn double_release_panics() {
        let mut prf = PhysRegFile::new(2);
        let a = prf.alloc().unwrap();
        prf.release(a);
        prf.release(a);
    }
}
