//! SimPoint-style program phase analysis (paper §6.1).
//!
//! The paper samples SPEC runs with SimPoint 3.0: execution is divided into
//! fixed-length instruction intervals, each summarized by a basic-block
//! vector (BBV); BBVs are randomly projected to a low dimension, clustered
//! with k-means (choosing `k` by a BIC-style score), and one representative
//! interval per cluster is simulated in detail, weighted by cluster size.
//!
//! This module reimplements that pipeline: [`BbvCollector`] gathers interval
//! vectors from the functional emulator, and [`pick_simpoints`] selects
//! representatives and weights.

use crate::rng::SmallRng;
use std::collections::HashMap;

/// Collects basic-block vectors over fixed-length instruction intervals.
#[derive(Debug, Clone)]
pub struct BbvCollector {
    interval_len: u64,
    in_interval: u64,
    current: HashMap<usize, u64>,
    vectors: Vec<HashMap<usize, u64>>,
}

impl BbvCollector {
    /// Creates a collector with the given interval length in instructions.
    ///
    /// # Panics
    ///
    /// Panics if `interval_len` is zero.
    pub fn new(interval_len: u64) -> BbvCollector {
        assert!(interval_len > 0);
        BbvCollector { interval_len, in_interval: 0, current: HashMap::new(), vectors: Vec::new() }
    }

    /// Records the execution of `len` instructions belonging to the basic
    /// block identified by `block_id` (e.g. the block's start PC).
    pub fn record(&mut self, block_id: usize, len: u64) {
        *self.current.entry(block_id).or_insert(0) += len;
        self.in_interval += len;
        if self.in_interval >= self.interval_len {
            self.vectors.push(std::mem::take(&mut self.current));
            self.in_interval = 0;
        }
    }

    /// Flushes a trailing partial interval, if any.
    pub fn finish(&mut self) {
        if !self.current.is_empty() {
            self.vectors.push(std::mem::take(&mut self.current));
            self.in_interval = 0;
        }
    }

    /// The collected interval vectors.
    pub fn vectors(&self) -> &[HashMap<usize, u64>] {
        &self.vectors
    }

    /// Number of complete or flushed intervals.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether no interval has been completed yet.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }
}

/// A selected simulation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPoint {
    /// Index of the representative interval.
    pub interval: usize,
    /// Fraction of all intervals represented by this point (sums to 1).
    pub weight: f64,
}

/// Projects sparse BBVs to `dim` dense dimensions with a seeded random
/// projection, as SimPoint 3.0 does (dimension 15 by default there).
pub fn project(vectors: &[HashMap<usize, u64>], dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut out = Vec::with_capacity(vectors.len());
    for v in vectors {
        let total: u64 = v.values().sum();
        let mut dense = vec![0.0; dim];
        if total > 0 {
            // Accumulate in block order: float addition is not associative,
            // so HashMap iteration order would leak the per-process hash
            // seed into the projection (and from there into the clustering).
            let mut blocks: Vec<(usize, u64)> = v.iter().map(|(&b, &c)| (b, c)).collect();
            blocks.sort_unstable_by_key(|&(b, _)| b);
            for (block, count) in blocks {
                let frac = count as f64 / total as f64;
                // Per-block deterministic projection row derived from the
                // block id and the global seed.
                let mut rng = SmallRng::seed_from_u64(
                    seed ^ (block as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                for d in dense.iter_mut() {
                    *d += frac * rng.random_range(-1.0..1.0);
                }
            }
        }
        out.push(dense);
    }
    out
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Result of one k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster index per point.
    pub assignment: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Total within-cluster sum of squared distances.
    pub inertia: f64,
}

/// Runs k-means with k-means++-style seeding (deterministic given `seed`).
///
/// # Panics
///
/// Panics if `k == 0` or `points` is empty.
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64, iters: usize) -> KMeans {
    assert!(k > 0 && !points.is_empty());
    let k = k.min(points.len());
    let mut rng = SmallRng::seed_from_u64(seed);
    let dim = points[0].len();

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    while centroids.len() < k {
        let d: Vec<f64> = points
            .iter()
            .map(|p| centroids.iter().map(|c| dist2(p, c)).fold(f64::INFINITY, f64::min))
            .collect();
        let total: f64 = d.iter().sum();
        let next = if total <= 0.0 {
            rng.random_range(0..points.len())
        } else {
            let mut t = rng.random_range(0.0..total);
            let mut idx = 0;
            for (i, w) in d.iter().enumerate() {
                if t < *w {
                    idx = i;
                    break;
                }
                t -= w;
                idx = i;
            }
            idx
        };
        centroids.push(points[next].clone());
    }

    let mut assignment = vec![0usize; points.len()];
    for _ in 0..iters {
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| {
                    dist2(p, &centroids[a]).partial_cmp(&dist2(p, &centroids[b])).unwrap()
                })
                .unwrap();
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; dim]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, p) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, x) in sums[assignment[i]].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, n)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *n > 0 {
                *c = sum.iter().map(|s| s / *n as f64).collect();
            }
        }
        if !changed {
            break;
        }
    }
    let inertia = points.iter().enumerate().map(|(i, p)| dist2(p, &centroids[assignment[i]])).sum();
    KMeans { assignment, centroids, inertia }
}

/// A BIC-style score for choosing `k` (higher is better): log-likelihood of
/// the spherical-Gaussian model minus a complexity penalty.
fn bic_score(points: &[Vec<f64>], km: &KMeans) -> f64 {
    let n = points.len() as f64;
    let k = km.centroids.len() as f64;
    let dim = points[0].len() as f64;
    let variance = (km.inertia / (n * dim)).max(1e-9);
    let log_likelihood = -0.5 * n * dim * (variance.ln() + 1.0);
    let params = k * (dim + 1.0);
    log_likelihood - 0.5 * params * n.ln()
}

/// Picks SimPoints from interval BBVs: projects, clusters for `k` in
/// `1..=max_k` choosing the best BIC score, then returns the interval closest
/// to each centroid with the cluster's weight.
///
/// Returns an empty vector if `vectors` is empty.
pub fn pick_simpoints(vectors: &[HashMap<usize, u64>], max_k: usize, seed: u64) -> Vec<SimPoint> {
    if vectors.is_empty() {
        return Vec::new();
    }
    let points = project(vectors, 16, seed);
    let mut best: Option<(f64, KMeans)> = None;
    for k in 1..=max_k.min(points.len()) {
        let km = kmeans(&points, k, seed.wrapping_add(k as u64), 50);
        let score = bic_score(&points, &km);
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, km));
        }
    }
    let (_, km) = best.expect("at least one clustering");
    let mut picks = Vec::new();
    for (ci, centroid) in km.centroids.iter().enumerate() {
        let members: Vec<usize> = (0..points.len()).filter(|&i| km.assignment[i] == ci).collect();
        if members.is_empty() {
            continue;
        }
        let rep = *members
            .iter()
            .min_by(|&&a, &&b| {
                dist2(&points[a], centroid).partial_cmp(&dist2(&points[b], centroid)).unwrap()
            })
            .unwrap();
        picks.push(SimPoint { interval: rep, weight: members.len() as f64 / points.len() as f64 });
    }
    picks.sort_by_key(|p| p.interval);
    picks
}

/// Combines per-SimPoint cycle counts into a weighted whole-run estimate:
/// `total_insts * Σ(weight_i * cpi_i)`.
pub fn weighted_cycles(points: &[(SimPoint, u64, u64)], total_insts: u64) -> f64 {
    // points: (simpoint, cycles, insts) per representative interval.
    let cpi: f64 = points
        .iter()
        .map(
            |(sp, cycles, insts)| {
                if *insts == 0 {
                    0.0
                } else {
                    sp.weight * (*cycles as f64 / *insts as f64)
                }
            },
        )
        .sum();
    cpi * total_insts as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth_vectors() -> Vec<HashMap<usize, u64>> {
        // Two clearly separated phases: blocks {1,2} vs blocks {100,101}.
        let mut v = Vec::new();
        for i in 0..20 {
            let mut m = HashMap::new();
            if i % 2 == 0 {
                m.insert(1, 80);
                m.insert(2, 20);
            } else {
                m.insert(100, 50);
                m.insert(101, 50);
            }
            v.push(m);
        }
        v
    }

    #[test]
    fn collector_chunks_intervals() {
        let mut c = BbvCollector::new(100);
        for _ in 0..25 {
            c.record(7, 10);
        }
        assert_eq!(c.len(), 2);
        c.finish();
        assert_eq!(c.len(), 3);
        assert_eq!(c.vectors()[0][&7], 100);
    }

    #[test]
    fn kmeans_separates_two_phases() {
        let points = project(&synth_vectors(), 16, 42);
        let km = kmeans(&points, 2, 1, 50);
        // All even intervals in one cluster, odd in the other.
        let c0 = km.assignment[0];
        for i in (0..20).step_by(2) {
            assert_eq!(km.assignment[i], c0);
        }
        for i in (1..20).step_by(2) {
            assert_ne!(km.assignment[i], c0);
        }
    }

    #[test]
    fn simpoints_weights_sum_to_one() {
        let picks = pick_simpoints(&synth_vectors(), 8, 42);
        let total: f64 = picks.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(!picks.is_empty() && picks.len() <= 8);
    }

    #[test]
    fn weighted_cycles_matches_uniform_case() {
        let sp = SimPoint { interval: 0, weight: 1.0 };
        // CPI of 2 over 1000 insts → 2000 cycles.
        let est = weighted_cycles(&[(sp, 200, 100)], 1000);
        assert!((est - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn determinism_across_runs() {
        let a = pick_simpoints(&synth_vectors(), 6, 7);
        let b = pick_simpoints(&synth_vectors(), 6, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.interval, y.interval);
            assert!((x.weight - y.weight).abs() < 1e-12);
        }
    }
}
