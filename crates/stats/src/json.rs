//! A minimal JSON value model, serializer, and parser.
//!
//! The hermetic build cannot pull `serde_json`, so the telemetry layer's
//! machine-readable dumps are built on this module instead. It supports the
//! full JSON data model with two deliberate restrictions that match our
//! producers: object keys keep insertion order (we always insert in a
//! deterministic order, so dumps are byte-stable), and non-finite floats
//! serialize as `null` (JSON has no NaN/Infinity).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number. Integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) so serialization is stable
    /// regardless of insertion order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts `key: value` into an object; panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(m) => {
                m.insert(key.to_string(), value.into());
            }
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Parses a JSON document (see [`parse`]).
    pub fn parse(src: &str) -> Result<Json, String> {
        parse(src)
    }

    /// Looks up `key` in an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to a compact single-line string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation, suitable for humans and `jq`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Shortest f64 representation; Rust's Display round-trips.
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Used by round-trip tests and by post-processing
/// scripts that read `results/*.json` back in.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let mut doc = Json::obj();
        doc.set("name", "core.iq.full_stalls");
        doc.set("value", 42u64);
        doc.set("ratio", 0.125);
        doc.set("tags", Json::Arr(vec!["a".into(), Json::Null, Json::Bool(true)]));
        let mut inner = Json::obj();
        inner.set("weird \"key\"\n", Json::Num(-3.5));
        doc.set("inner", inner);

        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            let back = parse(&text).unwrap();
            assert_eq!(back, doc);
        }
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Json::from(1_000_000u64).to_string_compact(), "1000000");
        assert_eq!(Json::from(0.5).to_string_compact(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn object_keys_are_sorted_in_output() {
        let mut doc = Json::obj();
        doc.set("zeta", 1u64);
        doc.set("alpha", 2u64);
        assert_eq!(doc.to_string_compact(), "{\"alpha\":2,\"zeta\":1}");
    }
}
