//! A small, dependency-free deterministic PRNG (xoshiro256**, seeded via
//! SplitMix64).
//!
//! The workspace runs in hermetic environments with no access to crates.io,
//! so the external `rand` crate is replaced by this module. The API mirrors
//! the subset of `rand` the repository uses — [`SmallRng::seed_from_u64`],
//! [`SmallRng::random`], and [`SmallRng::random_range`] — which keeps call
//! sites idiomatic and made the migration mechanical.
//!
//! The stream is fixed by the algorithm and will never change: seeded
//! generators are used to build workload input data, so stability across
//! versions and platforms is part of the contract.
//!
//! # Examples
//!
//! ```
//! use lf_stats::rng::SmallRng;
//!
//! let mut a = SmallRng::seed_from_u64(7);
//! let mut b = SmallRng::seed_from_u64(7);
//! let x: u64 = a.random();
//! let y: u64 = b.random();
//! assert_eq!(x, y);
//! assert!(a.random_range(0..10u64) < 10);
//! ```

use std::ops::{Range, RangeInclusive};

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose state is expanded from `seed` with
    /// SplitMix64 (so nearby seeds yield unrelated streams).
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SmallRng { s: [next(), next(), next(), next()] }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// A uniformly distributed value of type `T`.
    pub fn random<T: RandomValue>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform sample from `range` (integer or float ranges, inclusive or
    /// half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u64` below `bound` (unbiased, via rejection).
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Rejection zone keeps the distribution exactly uniform.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// Types [`SmallRng::random`] can produce.
pub trait RandomValue {
    /// Draws one uniformly distributed value.
    fn random(rng: &mut SmallRng) -> Self;
}

impl RandomValue for u64 {
    fn random(rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }
}

impl RandomValue for u32 {
    fn random(rng: &mut SmallRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl RandomValue for u8 {
    fn random(rng: &mut SmallRng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl RandomValue for bool {
    fn random(rng: &mut SmallRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl RandomValue for f64 {
    fn random(rng: &mut SmallRng) -> f64 {
        rng.random_f64()
    }
}

/// Range types [`SmallRng`] can sample from uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one sample from the range.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.random_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u = r.random_range(0..7u64);
            assert!(u < 7);
            let i = r.random_range(-5..5i64);
            assert!((-5..5).contains(&i));
            let v = r.random_range(0..=3usize);
            assert!(v <= 3);
            let f = r.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.random_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c} implausible");
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
