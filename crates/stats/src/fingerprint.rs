//! Stable content fingerprinting for run deduplication.
//!
//! The experiment engine identifies a simulation by a *fingerprint*: a
//! stable 64-bit hash over the annotated program, the canonicalized
//! configuration, and the workload scale. Two `RunRequest`s with equal
//! fingerprints are guaranteed to produce identical `SimResult`s (the
//! simulator is deterministic), so the planner simulates each fingerprint
//! exactly once and the on-disk cache can key artifacts by it.
//!
//! [`Fingerprint`] is a small streaming hasher built on FNV-1a with
//! per-value type tagging, so differently-typed field sequences that
//! happen to share a byte encoding cannot collide trivially, and
//! variable-length values (strings, byte slices) are length-prefixed so
//! adjacent fields cannot bleed into each other. Unlike
//! `std::collections::hash_map::DefaultHasher`, the result is stable
//! across processes and Rust versions — a requirement for the on-disk
//! cache.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming, process-stable 64-bit content hasher.
///
/// # Examples
///
/// ```
/// use lf_stats::Fingerprint;
///
/// let mut a = Fingerprint::new();
/// a.u64(8192).bool(true).str("smoke");
/// let mut b = Fingerprint::new();
/// b.u64(8192).bool(true).str("smoke");
/// assert_eq!(a.finish(), b.finish());
///
/// let mut c = Fingerprint::new();
/// c.u64(8192).bool(false).str("smoke");
/// assert_ne!(a.finish(), c.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fingerprint {
    h: u64,
}

/// Type tags providing domain separation between pushed values.
#[repr(u8)]
enum Tag {
    U64 = 1,
    F64 = 2,
    Bool = 3,
    Str = 4,
    Bytes = 5,
    None = 6,
    Some = 7,
}

impl Fingerprint {
    /// Starts a fresh fingerprint.
    pub fn new() -> Fingerprint {
        Fingerprint { h: FNV_OFFSET }
    }

    fn byte(&mut self, b: u8) {
        self.h ^= b as u64;
        self.h = self.h.wrapping_mul(FNV_PRIME);
    }

    fn raw_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Feeds an unsigned integer.
    pub fn u64(&mut self, v: u64) -> &mut Fingerprint {
        self.byte(Tag::U64 as u8);
        self.raw_u64(v);
        self
    }

    /// Feeds a `usize` (hashed as `u64`, so 32/64-bit hosts agree).
    pub fn usize(&mut self, v: usize) -> &mut Fingerprint {
        self.u64(v as u64)
    }

    /// Feeds a float by its bit pattern, with `-0.0` normalized to `0.0`
    /// so numerically-equal configurations fingerprint equally. (NaN
    /// payloads are hashed as-is; configuration knobs are never NaN.)
    pub fn f64(&mut self, v: f64) -> &mut Fingerprint {
        let v = if v == 0.0 { 0.0 } else { v };
        self.byte(Tag::F64 as u8);
        self.raw_u64(v.to_bits());
        self
    }

    /// Feeds a boolean.
    pub fn bool(&mut self, v: bool) -> &mut Fingerprint {
        self.byte(Tag::Bool as u8);
        self.byte(v as u8);
        self
    }

    /// Feeds a string (length-prefixed UTF-8 bytes).
    pub fn str(&mut self, s: &str) -> &mut Fingerprint {
        self.byte(Tag::Str as u8);
        self.raw_u64(s.len() as u64);
        for &b in s.as_bytes() {
            self.byte(b);
        }
        self
    }

    /// Feeds a byte slice (length-prefixed).
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Fingerprint {
        self.byte(Tag::Bytes as u8);
        self.raw_u64(bytes.len() as u64);
        for &b in bytes {
            self.byte(b);
        }
        self
    }

    /// Feeds an optional unsigned integer (presence is part of the hash,
    /// so `None` and `Some(0)` differ).
    pub fn opt_u64(&mut self, v: Option<u64>) -> &mut Fingerprint {
        match v {
            None => {
                self.byte(Tag::None as u8);
            }
            Some(v) => {
                self.byte(Tag::Some as u8);
                self.raw_u64(v);
            }
        }
        self
    }

    /// Feeds an optional `usize`.
    pub fn opt_usize(&mut self, v: Option<usize>) -> &mut Fingerprint {
        self.opt_u64(v.map(|x| x as u64))
    }

    /// The fingerprint over everything fed so far.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

impl Default for Fingerprint {
    fn default() -> Fingerprint {
        Fingerprint::new()
    }
}

/// Formats a fingerprint as the fixed-width hex token used in cache file
/// names and JSON reports.
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parses a [`fingerprint_hex`] token back to the fingerprint.
pub fn parse_fingerprint_hex(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_instances() {
        let mut a = Fingerprint::new();
        a.u64(1).f64(0.7).str("x").bool(true).opt_usize(None);
        let mut b = Fingerprint::new();
        b.u64(1).f64(0.7).str("x").bool(true).opt_usize(None);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn every_value_matters() {
        let base = {
            let mut f = Fingerprint::new();
            f.u64(1).f64(0.7).str("x").bool(true).opt_usize(Some(4));
            f.finish()
        };
        let variants: Vec<u64> = vec![
            {
                let mut f = Fingerprint::new();
                f.u64(2).f64(0.7).str("x").bool(true).opt_usize(Some(4));
                f.finish()
            },
            {
                let mut f = Fingerprint::new();
                f.u64(1).f64(0.8).str("x").bool(true).opt_usize(Some(4));
                f.finish()
            },
            {
                let mut f = Fingerprint::new();
                f.u64(1).f64(0.7).str("y").bool(true).opt_usize(Some(4));
                f.finish()
            },
            {
                let mut f = Fingerprint::new();
                f.u64(1).f64(0.7).str("x").bool(false).opt_usize(Some(4));
                f.finish()
            },
            {
                let mut f = Fingerprint::new();
                f.u64(1).f64(0.7).str("x").bool(true).opt_usize(None);
                f.finish()
            },
        ];
        for v in variants {
            assert_ne!(base, v);
        }
    }

    #[test]
    fn none_differs_from_some_zero() {
        let mut a = Fingerprint::new();
        a.opt_u64(None);
        let mut b = Fingerprint::new();
        b.opt_u64(Some(0));
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn string_boundaries_do_not_bleed() {
        let mut a = Fingerprint::new();
        a.str("ab").str("c");
        let mut b = Fingerprint::new();
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn negative_zero_is_normalized() {
        let mut a = Fingerprint::new();
        a.f64(0.0);
        let mut b = Fingerprint::new();
        b.f64(-0.0);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn hex_round_trips() {
        let fp = 0x0123_4567_89ab_cdef;
        assert_eq!(parse_fingerprint_hex(&fingerprint_hex(fp)), Some(fp));
        assert_eq!(parse_fingerprint_hex("xyz"), None);
    }
}
