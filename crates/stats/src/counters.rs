//! Event counters and histograms for simulator statistics.

use std::collections::BTreeMap;
use std::fmt;

/// A named bag of monotonically increasing event counters.
///
/// # Examples
///
/// ```
/// use lf_stats::Counters;
///
/// let mut c = Counters::new();
/// c.add("commits", 8);
/// c.inc("squashes");
/// assert_eq!(c.get("commits"), 8);
/// assert_eq!(c.get("squashes"), 1);
/// assert_eq!(c.get("missing"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    map: BTreeMap<String, u64>,
}

impl Counters {
    /// Creates an empty counter bag.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Adds `n` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.map.entry(name.to_string()).or_insert(0) += n;
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter; absent counters read as zero.
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Iterates over `(name, value)` pairs in ascending name order.
    ///
    /// The ordering is a guarantee, not an implementation detail: text and
    /// JSON dumps, `merge`, and golden-file tests all rely on two bags with
    /// the same contents iterating identically.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another counter bag into this one by summing.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// The ratio `num / den` of two counters, or 0.0 if the denominator is 0.
    pub fn ratio(&self, num: &str, den: &str) -> f64 {
        let d = self.get(den);
        if d == 0 {
            0.0
        } else {
            self.get(num) as f64 / d as f64
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:40} {v}")?;
        }
        Ok(())
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// Bucket `i` (of `n`) covers `[i * width, (i + 1) * width)`; the final
/// bucket additionally absorbs all larger samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    width: u64,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `width` each.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `buckets == 0`.
    pub fn new(width: u64, buckets: usize) -> Histogram {
        assert!(width > 0 && buckets > 0);
        Histogram { width, buckets: vec![0; buckets], count: 0, sum: 0, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = ((sample / self.width) as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += sample;
        self.max = self.max.max(sample);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The configured bucket width.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Approximate `p`-th percentile (`p` in `[0, 1]`), resolved to the
    /// upper edge of the bucket containing that rank. The final bucket is
    /// open-ended, so samples there report the observed max instead of a
    /// bucket edge. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if i == self.buckets.len() - 1 {
                    return self.max;
                }
                return (i as u64 + 1) * self.width;
            }
        }
        self.max
    }

    /// Fraction of samples at or above `threshold`.
    pub fn frac_at_least(&self, threshold: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let first = (threshold / self.width) as usize;
        let n: u64 = self.buckets.iter().skip(first.min(self.buckets.len() - 1)).sum();
        n as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_and_ratio() {
        let mut a = Counters::new();
        a.add("x", 3);
        let mut b = Counters::new();
        b.add("x", 2);
        b.add("y", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert!((a.ratio("y", "x") - 0.8).abs() < 1e-12);
        assert_eq!(a.ratio("x", "zero"), 0.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 4);
        for s in [0, 9, 10, 39, 40, 1000] {
            h.record(s);
        }
        assert_eq!(h.buckets(), &[2, 1, 0, 3]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn counters_iterate_in_name_order() {
        let mut c = Counters::new();
        for name in ["zeta", "alpha", "mid"] {
            c.inc(name);
        }
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new(10, 4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.frac_at_least(0), 0.0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(1.0), 0);
    }

    #[test]
    fn single_sample_histogram() {
        let mut h = Histogram::new(10, 4);
        h.record(17);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 17.0);
        assert_eq!(h.max(), 17);
        // 17 lands in bucket [10, 20): every percentile resolves to its
        // upper edge.
        assert_eq!(h.percentile(0.0), 20);
        assert_eq!(h.percentile(0.5), 20);
        assert_eq!(h.percentile(1.0), 20);
        assert_eq!(h.frac_at_least(10), 1.0);
        assert_eq!(h.frac_at_least(20), 0.0);
    }

    #[test]
    fn overflow_samples_land_in_last_bucket_and_report_observed_max() {
        let mut h = Histogram::new(10, 4);
        for s in [5, 5, 5, 500] {
            h.record(s);
        }
        assert_eq!(h.buckets(), &[3, 0, 0, 1]);
        // p99 falls in the open-ended final bucket -> observed max, not a
        // fabricated bucket edge.
        assert_eq!(h.percentile(0.99), 500);
        assert_eq!(h.percentile(0.5), 10);
        assert_eq!(h.max(), 500);
    }

    #[test]
    fn percentiles_track_rank_across_buckets() {
        let mut h = Histogram::new(1, 16);
        for s in 0..10 {
            h.record(s);
        }
        assert_eq!(h.percentile(0.1), 1);
        assert_eq!(h.percentile(0.5), 5);
        assert_eq!(h.percentile(0.9), 9);
        assert_eq!(h.percentile(1.0), 10);
    }

    #[test]
    fn histogram_mean_and_tail() {
        let mut h = Histogram::new(1, 8);
        for s in [1, 2, 3, 4] {
            h.record(s);
        }
        assert!((h.mean() - 2.5).abs() < 1e-12);
        assert!((h.frac_at_least(3) - 0.5).abs() < 1e-12);
    }
}
