//! Summary statistics used throughout the evaluation: geometric means,
//! speedups, and exponential moving averages.

/// Geometric mean of a slice of positive values.
///
/// Returns 0.0 for an empty slice.
///
/// # Examples
///
/// ```
/// let g = lf_stats::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Harmonic mean of positive values; 0.0 for an empty slice.
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

/// Speedup of `new` over `old` measured in cycles: `old / new`.
///
/// # Panics
///
/// Panics if `new_cycles` is zero.
pub fn speedup(old_cycles: u64, new_cycles: u64) -> f64 {
    assert!(new_cycles > 0, "speedup denominator must be positive");
    old_cycles as f64 / new_cycles as f64
}

/// Converts a speedup factor (e.g. `1.095`) to a percentage gain (`9.5`).
pub fn speedup_pct(factor: f64) -> f64 {
    (factor - 1.0) * 100.0
}

/// Applies Amdahl's law in reverse: given a whole-program speedup and the
/// fraction of time spent in accelerated regions, returns the implied
/// in-region speedup (paper §6.3 derives the 43% in-region geomean this way).
///
/// Returns `None` if the inputs imply the accelerated region finished in
/// non-positive time.
pub fn amdahl_region_speedup(whole_speedup: f64, region_fraction: f64) -> Option<f64> {
    // whole = 1 / ((1 - f) + f / s)  =>  s = f / (1/whole - (1 - f))
    let denom = 1.0 / whole_speedup - (1.0 - region_fraction);
    if denom <= 0.0 {
        None
    } else {
        Some(region_fraction / denom)
    }
}

/// An exponential moving average `S ← αS + (1 − α)I` as used by the
/// iteration-packing epoch-size predictor (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ema {
    alpha: f64,
    value: Option<f64>,
}

impl Ema {
    /// Creates an EMA with smoothing factor `alpha` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1)`.
    pub fn new(alpha: f64) -> Ema {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        Ema { alpha, value: None }
    }

    /// Feeds one observation; the first observation seeds the average.
    pub fn update(&mut self, obs: f64) {
        self.value = Some(match self.value {
            None => obs,
            Some(v) => self.alpha * v + (1.0 - self.alpha) * obs,
        });
    }

    /// The current average, if any observation has been fed.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn means() {
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((harmonic_mean(&[1.0, 0.5]) - (2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_pct() {
        let s = speedup(1100, 1000);
        assert!((s - 1.1).abs() < 1e-12);
        assert!((speedup_pct(s) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn amdahl_inversion() {
        // 42% of time with ≥2 threadlets and a 9.5% whole-program speedup
        // implies roughly the paper's 43% in-region speedup ballpark.
        let s = amdahl_region_speedup(1.095, 0.42).unwrap();
        assert!(s > 1.2 && s < 1.7, "in-region speedup {s}");
        // Degenerate case: region fraction too small for the whole speedup.
        assert!(amdahl_region_speedup(2.0, 0.1).is_none());
    }

    #[test]
    fn ema_tracks_constant_and_smooths() {
        let mut e = Ema::new(0.8);
        e.update(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.update(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.update(0.0);
        assert!((e.value().unwrap() - 8.0).abs() < 1e-12);
    }
}
