//! A gem5-style hierarchical metrics registry.
//!
//! Simulator components register named metrics under dotted hierarchical
//! names (`core.iq.full_stalls`, `mem.l2.misses`) and bump them during
//! simulation. At dump time the registry renders either a stable,
//! line-oriented text format or a JSON document (via [`crate::json`]).
//!
//! Three metric kinds exist:
//!
//! - **Scalars** — monotonically updated `u64` counters.
//! - **Distributions** — fixed-bucket [`Histogram`]s with mean, max, and
//!   approximate percentiles.
//! - **Formulas** — derived values (e.g. IPC) expressed as an [`Expr`] over
//!   other metrics, evaluated lazily at dump time so they always reflect
//!   the final counter values. Division by zero evaluates to `0.0`.
//!
//! Registration is checked: registering a name twice, or a name that is a
//! strict prefix/extension of an existing metric's dotted path (which would
//! produce an ambiguous JSON hierarchy), returns [`RegistryError`].

use crate::counters::Histogram;
use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt;

/// Error returned when a metric cannot be registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A metric with this exact name already exists.
    Duplicate(String),
    /// The name is empty, or has an empty dotted component.
    BadName(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Duplicate(n) => write!(f, "metric {n:?} is already registered"),
            RegistryError::BadName(n) => write!(f, "invalid metric name {n:?}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// An arithmetic expression over metrics, evaluated at dump time.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The current value of another metric (scalar value, distribution
    /// mean, or nested formula).
    Metric(String),
    /// A literal constant.
    Const(f64),
    /// Sum of two subexpressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two subexpressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two subexpressions.
    Mul(Box<Expr>, Box<Expr>),
    /// Quotient of two subexpressions; `x / 0` evaluates to `0.0`.
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// References metric `name`.
    pub fn metric(name: &str) -> Expr {
        Expr::Metric(name.to_string())
    }

    /// A constant.
    pub fn constant(v: f64) -> Expr {
        Expr::Const(v)
    }
}

macro_rules! impl_expr_op {
    ($trait:ident, $method:ident, $variant:ident) => {
        impl std::ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::$variant(Box::new(self), Box::new(rhs))
            }
        }
    };
}

impl_expr_op!(Add, add, Add);
impl_expr_op!(Sub, sub, Sub);
impl_expr_op!(Mul, mul, Mul);
impl_expr_op!(Div, div, Div);

#[derive(Debug, Clone)]
enum Slot {
    Scalar { value: u64 },
    Distribution { hist: Histogram },
    Formula { expr: Expr },
}

#[derive(Debug, Clone)]
struct Entry {
    desc: String,
    slot: Slot,
}

/// A registry of named metrics. See the [module docs](self) for an overview.
///
/// # Examples
///
/// ```
/// use lf_stats::registry::{Expr, MetricsRegistry};
///
/// let mut reg = MetricsRegistry::new();
/// reg.register_scalar("core.commits", "committed instructions").unwrap();
/// reg.register_scalar("core.cycles", "simulated cycles").unwrap();
/// reg.register_formula(
///     "core.ipc",
///     "instructions per cycle",
///     Expr::metric("core.commits") / Expr::metric("core.cycles"),
/// )
/// .unwrap();
/// reg.add("core.commits", 30);
/// reg.add("core.cycles", 10);
/// assert_eq!(reg.value("core.ipc"), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: BTreeMap<String, Entry>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn check_name(&self, name: &str) -> Result<(), RegistryError> {
        if name.is_empty() || name.split('.').any(str::is_empty) {
            return Err(RegistryError::BadName(name.to_string()));
        }
        if self.entries.contains_key(name) {
            return Err(RegistryError::Duplicate(name.to_string()));
        }
        Ok(())
    }

    fn insert(&mut self, name: &str, desc: &str, slot: Slot) -> Result<(), RegistryError> {
        self.check_name(name)?;
        self.entries.insert(name.to_string(), Entry { desc: desc.to_string(), slot });
        Ok(())
    }

    /// Registers a scalar counter starting at zero.
    pub fn register_scalar(&mut self, name: &str, desc: &str) -> Result<(), RegistryError> {
        self.insert(name, desc, Slot::Scalar { value: 0 })
    }

    /// Registers a distribution with `buckets` buckets of `width` each.
    pub fn register_distribution(
        &mut self,
        name: &str,
        desc: &str,
        width: u64,
        buckets: usize,
    ) -> Result<(), RegistryError> {
        self.insert(name, desc, Slot::Distribution { hist: Histogram::new(width, buckets) })
    }

    /// Registers a distribution from an already-populated histogram (e.g.
    /// one recorded outside the registry during a simulation).
    pub fn insert_distribution(
        &mut self,
        name: &str,
        desc: &str,
        hist: Histogram,
    ) -> Result<(), RegistryError> {
        self.insert(name, desc, Slot::Distribution { hist })
    }

    /// Registers a derived formula, evaluated on demand.
    pub fn register_formula(
        &mut self,
        name: &str,
        desc: &str,
        expr: Expr,
    ) -> Result<(), RegistryError> {
        self.insert(name, desc, Slot::Formula { expr })
    }

    /// Adds `n` to scalar `name`. Unregistered names are created on first
    /// use (with an empty description) so hot paths need no setup; adding
    /// to a distribution or formula panics, as that is a wiring bug.
    pub fn add(&mut self, name: &str, n: u64) {
        let entry = self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| Entry { desc: String::new(), slot: Slot::Scalar { value: 0 } });
        match &mut entry.slot {
            Slot::Scalar { value } => *value += n,
            _ => panic!("metric {name:?} is not a scalar"),
        }
    }

    /// Increments scalar `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Sets scalar `name` to an absolute value.
    pub fn set(&mut self, name: &str, v: u64) {
        let entry = self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| Entry { desc: String::new(), slot: Slot::Scalar { value: 0 } });
        match &mut entry.slot {
            Slot::Scalar { value } => *value = v,
            _ => panic!("metric {name:?} is not a scalar"),
        }
    }

    /// Records one sample into distribution `name`; panics if `name` is not
    /// a registered distribution.
    pub fn record(&mut self, name: &str, sample: u64) {
        match self.entries.get_mut(name).map(|e| &mut e.slot) {
            Some(Slot::Distribution { hist }) => hist.record(sample),
            _ => panic!("metric {name:?} is not a registered distribution"),
        }
    }

    /// Reads scalar `name`; 0 for absent or non-scalar metrics.
    pub fn scalar(&self, name: &str) -> u64 {
        match self.entries.get(name).map(|e| &e.slot) {
            Some(Slot::Scalar { value }) => *value,
            _ => 0,
        }
    }

    /// The distribution registered as `name`, if any.
    pub fn distribution(&self, name: &str) -> Option<&Histogram> {
        match self.entries.get(name).map(|e| &e.slot) {
            Some(Slot::Distribution { hist }) => Some(hist),
            _ => None,
        }
    }

    /// Evaluates any metric to a float: scalar value, distribution mean, or
    /// formula result. Unknown names evaluate to `0.0`.
    pub fn value(&self, name: &str) -> f64 {
        self.eval(&Expr::Metric(name.to_string()), 0)
    }

    fn eval(&self, expr: &Expr, depth: usize) -> f64 {
        // Formulas may reference other formulas; bound the recursion so a
        // (misconfigured) reference cycle degrades to 0.0 instead of
        // overflowing the stack.
        if depth > 16 {
            return 0.0;
        }
        match expr {
            Expr::Const(c) => *c,
            Expr::Metric(name) => match self.entries.get(name).map(|e| &e.slot) {
                Some(Slot::Scalar { value }) => *value as f64,
                Some(Slot::Distribution { hist }) => hist.mean(),
                Some(Slot::Formula { expr }) => self.eval(&expr.clone(), depth + 1),
                None => 0.0,
            },
            Expr::Add(a, b) => self.eval(a, depth) + self.eval(b, depth),
            Expr::Sub(a, b) => self.eval(a, depth) - self.eval(b, depth),
            Expr::Mul(a, b) => self.eval(a, depth) * self.eval(b, depth),
            Expr::Div(a, b) => {
                let d = self.eval(b, depth);
                if d == 0.0 {
                    0.0
                } else {
                    self.eval(a, depth) / d
                }
            }
        }
    }

    /// Iterates metric names in sorted (dump) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// A point-in-time copy of every scalar's value, in name order. Interval
    /// samplers snapshot this each period and diff consecutive snapshots.
    pub fn scalar_snapshot(&self) -> BTreeMap<String, u64> {
        self.entries
            .iter()
            .filter_map(|(k, e)| match &e.slot {
                Slot::Scalar { value } => Some((k.clone(), *value)),
                _ => None,
            })
            .collect()
    }

    /// Merges another registry into this one: scalars sum; distributions
    /// and formulas are copied if absent here (first writer wins).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, entry) in &other.entries {
            match &entry.slot {
                Slot::Scalar { value } => self.add(name, *value),
                _ => {
                    self.entries.entry(name.clone()).or_insert_with(|| entry.clone());
                }
            }
        }
    }

    /// Renders the full registry as a JSON object keyed by metric name.
    /// Scalars become numbers; distributions and formulas become objects
    /// with summary fields.
    pub fn to_json(&self) -> Json {
        let mut root = Json::obj();
        for (name, entry) in &self.entries {
            let v = match &entry.slot {
                Slot::Scalar { value } => Json::from(*value),
                Slot::Distribution { hist } => {
                    let mut o = Json::obj();
                    o.set("kind", "distribution");
                    o.set("count", hist.count());
                    o.set("mean", hist.mean());
                    o.set("max", hist.max());
                    o.set("p50", hist.percentile(0.50));
                    o.set("p90", hist.percentile(0.90));
                    o.set("p99", hist.percentile(0.99));
                    o.set("bucket_width", hist.width());
                    o.set("buckets", Json::from(hist.buckets().to_vec()));
                    o
                }
                Slot::Formula { .. } => {
                    let mut o = Json::obj();
                    o.set("kind", "formula");
                    o.set("value", self.value(name));
                    o
                }
            };
            root.set(name, v);
        }
        root
    }

    /// Writes the registry in a stable, line-oriented text format: one
    /// metric per line, name-sorted, `name value [# description]`, with
    /// distributions expanded to summary fields. The format is append-only
    /// stable so downstream `grep`/`awk` pipelines don't break.
    pub fn dump_text(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        for (name, entry) in &self.entries {
            let comment =
                if entry.desc.is_empty() { String::new() } else { format!("  # {}", entry.desc) };
            match &entry.slot {
                Slot::Scalar { value } => {
                    writeln!(out, "{name:48} {value:>16}{comment}")?;
                }
                Slot::Formula { .. } => {
                    writeln!(out, "{name:48} {:>16.4}{comment}", self.value(name))?;
                }
                Slot::Distribution { hist } => {
                    writeln!(out, "{:48} {:>16}{comment}", format!("{name}.count"), hist.count())?;
                    writeln!(out, "{:48} {:>16.4}", format!("{name}.mean"), hist.mean())?;
                    writeln!(out, "{:48} {:>16}", format!("{name}.max"), hist.max())?;
                    writeln!(out, "{:48} {:>16}", format!("{name}.p50"), hist.percentile(0.50))?;
                    writeln!(out, "{:48} {:>16}", format!("{name}.p99"), hist.percentile(0.99))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_rejects_collisions_and_bad_names() {
        let mut reg = MetricsRegistry::new();
        reg.register_scalar("core.commits", "x").unwrap();
        assert_eq!(
            reg.register_scalar("core.commits", "y"),
            Err(RegistryError::Duplicate("core.commits".to_string()))
        );
        assert_eq!(
            reg.register_distribution("core.commits", "y", 1, 4),
            Err(RegistryError::Duplicate("core.commits".to_string()))
        );
        assert_eq!(
            reg.register_formula("core.commits", "y", Expr::constant(1.0)),
            Err(RegistryError::Duplicate("core.commits".to_string()))
        );
        assert_eq!(reg.register_scalar("", "y"), Err(RegistryError::BadName(String::new())));
        assert_eq!(
            reg.register_scalar("a..b", "y"),
            Err(RegistryError::BadName("a..b".to_string()))
        );
    }

    #[test]
    fn formulas_evaluate_lazily_with_div_by_zero_guard() {
        let mut reg = MetricsRegistry::new();
        reg.register_formula("ipc", "", Expr::metric("commits") / Expr::metric("cycles")).unwrap();
        assert_eq!(reg.value("ipc"), 0.0); // both counters absent -> 0/0 -> 0
        reg.add("commits", 24);
        assert_eq!(reg.value("ipc"), 0.0); // cycles still 0
        reg.add("cycles", 8);
        assert_eq!(reg.value("ipc"), 3.0); // reflects post-registration updates
    }

    #[test]
    fn nested_formula_cycles_degrade_to_zero() {
        let mut reg = MetricsRegistry::new();
        reg.register_formula("a", "", Expr::metric("b") + Expr::constant(1.0)).unwrap();
        reg.register_formula("b", "", Expr::metric("a")).unwrap();
        // Bounded recursion: must terminate, value is well-defined garbage.
        let v = reg.value("a");
        assert!(v.is_finite());
    }

    #[test]
    fn snapshot_and_merge() {
        let mut a = MetricsRegistry::new();
        a.add("x", 3);
        a.register_distribution("d", "", 1, 4).unwrap();
        a.record("d", 2);
        let mut b = MetricsRegistry::new();
        b.add("x", 2);
        b.add("y", 7);
        a.merge(&b);
        assert_eq!(a.scalar("x"), 5);
        assert_eq!(a.scalar("y"), 7);
        let snap = a.scalar_snapshot();
        assert_eq!(snap.get("x"), Some(&5));
        assert!(!snap.contains_key("d")); // distributions not in scalar snapshot
    }

    #[test]
    fn json_dump_contains_all_kinds() {
        let mut reg = MetricsRegistry::new();
        reg.add("core.commits", 10);
        reg.register_distribution("core.occ", "", 2, 4).unwrap();
        reg.record("core.occ", 3);
        reg.register_formula("core.half", "", Expr::metric("core.commits") * Expr::constant(0.5))
            .unwrap();
        let j = reg.to_json();
        assert_eq!(j.get("core.commits").unwrap().as_u64(), Some(10));
        assert_eq!(j.get("core.occ").unwrap().get("kind").unwrap().as_str(), Some("distribution"));
        assert_eq!(j.get("core.half").unwrap().get("value").unwrap().as_f64(), Some(5.0));
    }

    #[test]
    fn text_dump_is_name_sorted_and_stable() {
        let mut reg = MetricsRegistry::new();
        reg.add("b.second", 2);
        reg.add("a.first", 1);
        let mut buf = Vec::new();
        reg.dump_text(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("a.first"));
        assert!(lines[1].starts_with("b.second"));
    }
}
