//! Shared fault-tolerance plumbing: deterministic fault-injection gates
//! and capped-exponential retry backoff.
//!
//! Both `lf-bench` (`--inject-fault panic:<rate>|...`) and `lf-verify`
//! (`--inject-bug-rate`) need to decide *deterministically* whether a
//! given run or case is selected for an injected fault: the decision must
//! be a pure function of the item's stable identity so a re-run (or a
//! `--resume`) selects exactly the same victims, and so a failure report
//! names items that actually reproduce. [`rate_gate`] is that shared
//! decision: a salted hash of the identity mapped to `[0, 1)` and compared
//! against the requested rate.
//!
//! [`Backoff`] is the retry schedule used for transient I/O failures
//! (run-cache stores, artifact writes): exponential growth from a base
//! delay, capped so a persistently failing resource cannot stall a
//! campaign for long.

use crate::fingerprint::Fingerprint;
use std::time::Duration;

/// Deterministic Bernoulli gate: returns `true` for roughly `rate` of all
/// `id` values, decided by a salted hash so the same `(id, salt)` always
/// answers the same way. `rate <= 0` never fires; `rate >= 1` always
/// fires.
pub fn rate_gate(id: u64, salt: &str, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let mut fp = Fingerprint::new();
    fp.str(salt).u64(id);
    // Top 53 bits → an f64 uniform in [0, 1).
    let u = (fp.finish() >> 11) as f64 / (1u64 << 53) as f64;
    u < rate
}

/// Capped exponential backoff schedule: yields `attempts` delays starting
/// at `base`, doubling each step, never exceeding `cap`.
#[derive(Debug, Clone)]
pub struct Backoff {
    next: Duration,
    cap: Duration,
    remaining: u32,
}

impl Backoff {
    /// A schedule of `attempts` delays starting at `base`, capped at `cap`.
    pub fn new(attempts: u32, base: Duration, cap: Duration) -> Backoff {
        Backoff { next: base, cap, remaining: attempts }
    }
}

impl Iterator for Backoff {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let d = self.next.min(self.cap);
        self.next = (self.next * 2).min(self.cap);
        Some(d)
    }
}

/// Runs `f` up to `1 + attempts` times, sleeping per [`Backoff`] between
/// tries. Returns the first success, or the last error once the schedule
/// is exhausted. The attempt count (1 = first try succeeded) is returned
/// alongside the value so callers can count retries in telemetry.
pub fn retry<T, E>(
    attempts: u32,
    base: Duration,
    cap: Duration,
    mut f: impl FnMut() -> Result<T, E>,
) -> (u32, Result<T, E>) {
    let mut tried = 1;
    let mut last = f();
    if last.is_ok() {
        return (tried, last);
    }
    for delay in Backoff::new(attempts, base, cap) {
        std::thread::sleep(delay);
        tried += 1;
        last = f();
        if last.is_ok() {
            break;
        }
    }
    (tried, last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_gate_is_deterministic_and_roughly_calibrated() {
        let hits: usize = (0..10_000).filter(|&i| rate_gate(i, "test", 0.05)).count();
        assert!((300..700).contains(&hits), "5% of 10k should land near 500, got {hits}");
        for i in 0..100 {
            assert_eq!(rate_gate(i, "test", 0.05), rate_gate(i, "test", 0.05));
        }
        // Different salts select different victims.
        let a: Vec<u64> = (0..1000).filter(|&i| rate_gate(i, "a", 0.1)).collect();
        let b: Vec<u64> = (0..1000).filter(|&i| rate_gate(i, "b", 0.1)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn rate_gate_extremes() {
        assert!(!rate_gate(42, "x", 0.0));
        assert!(rate_gate(42, "x", 1.0));
        assert!(!rate_gate(42, "x", -1.0));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let delays: Vec<u64> =
            Backoff::new(5, Duration::from_millis(10), Duration::from_millis(50))
                .map(|d| d.as_millis() as u64)
                .collect();
        assert_eq!(delays, vec![10, 20, 40, 50, 50]);
    }

    #[test]
    fn retry_counts_attempts() {
        let mut calls = 0;
        let (tried, r) = retry(3, Duration::from_millis(1), Duration::from_millis(1), || {
            calls += 1;
            if calls < 3 {
                Err("transient")
            } else {
                Ok(calls)
            }
        });
        assert_eq!(r, Ok(3));
        assert_eq!(tried, 3);

        let (tried, r): (u32, Result<(), &str>) =
            retry(2, Duration::from_millis(1), Duration::from_millis(1), || Err("hard"));
        assert_eq!(r, Err("hard"));
        assert_eq!(tried, 3, "one initial try plus two retries");
    }
}
