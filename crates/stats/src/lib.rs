//! # lf-stats — statistics utilities for the LoopFrog reproduction
//!
//! Event [`Counters`] and [`Histogram`]s for simulator statistics, a
//! gem5-style hierarchical [`MetricsRegistry`] with derived-formula and
//! distribution metrics plus JSON/text dumps ([`registry`], [`json`]),
//! summary math ([`geomean`], [`speedup`], Amdahl inversion), an exponential
//! moving average ([`Ema`]) used by iteration packing, and a SimPoint-style
//! phase analysis pipeline ([`simpoint`]) mirroring the paper's §6.1
//! methodology.

#![warn(missing_docs)]

pub mod counters;
pub mod fault;
pub mod fingerprint;
pub mod json;
pub mod registry;
pub mod rng;
pub mod simpoint;
pub mod summary;

pub use counters::{Counters, Histogram};
pub use fault::{rate_gate, Backoff};
pub use fingerprint::{fingerprint_hex, parse_fingerprint_hex, Fingerprint};
pub use json::Json;
pub use registry::{Expr, MetricsRegistry, RegistryError};
pub use rng::SmallRng;
pub use simpoint::{pick_simpoints, BbvCollector, SimPoint};
pub use summary::{amdahl_region_speedup, geomean, harmonic_mean, mean, speedup, speedup_pct, Ema};
