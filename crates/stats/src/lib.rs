//! # lf-stats — statistics utilities for the LoopFrog reproduction
//!
//! Event [`Counters`] and [`Histogram`]s for simulator statistics, summary
//! math ([`geomean`], [`speedup`], Amdahl inversion), an exponential moving
//! average ([`Ema`]) used by iteration packing, and a SimPoint-style phase
//! analysis pipeline ([`simpoint`]) mirroring the paper's §6.1 methodology.

#![warn(missing_docs)]

pub mod counters;
pub mod simpoint;
pub mod summary;

pub use counters::{Counters, Histogram};
pub use simpoint::{pick_simpoints, BbvCollector, SimPoint};
pub use summary::{amdahl_region_speedup, geomean, harmonic_mean, mean, speedup, speedup_pct, Ema};
