//! Register data-flow analyses: per-block def/use sets, backward liveness,
//! and register loop-carried-dependence (LCD) detection (paper §3, §5.3).

use crate::cfg::Cfg;
use crate::loops::Loop;
use lf_isa::{Inst, Program, NUM_ARCH_REGS};
use std::collections::BTreeSet;

/// Caller-saved registers clobbered by a call under the kernel calling
/// convention (RISC-V-style: `ra`, `t0-t6`, `a0-a7`, `ft0-ft7`, `fa0-fa7`).
pub fn caller_saved() -> RegSet {
    let mut s = RegSet::empty();
    for r in [1usize, 5, 6, 7, 28, 29, 30, 31] {
        s.insert(r);
    }
    for r in 10..=17 {
        s.insert(r); // a0-a7
        s.insert(32 + r); // fa0-fa7
    }
    for r in 0..=7 {
        s.insert(32 + r); // ft0-ft7
    }
    s
}

/// Argument registers read by a call under the kernel calling convention.
pub fn call_args() -> RegSet {
    let mut s = RegSet::empty();
    for r in 10..=17 {
        s.insert(r);
        s.insert(32 + r);
    }
    s
}

/// Registers defined by `inst` for data-flow purposes (calls clobber the
/// caller-saved set).
pub fn df_defs(inst: &Inst) -> RegSet {
    if matches!(inst, Inst::Call { .. }) {
        let mut s = caller_saved();
        if let Some(d) = inst.def() {
            s.insert(d.index());
        }
        return s;
    }
    let mut s = RegSet::empty();
    if let Some(d) = inst.def() {
        s.insert(d.index());
    }
    s
}

/// Registers used by `inst` for data-flow purposes (calls read arguments).
pub fn df_uses(inst: &Inst) -> RegSet {
    if matches!(inst, Inst::Call { .. }) {
        return call_args();
    }
    let mut s = RegSet::empty();
    for u in inst.uses().iter().flatten() {
        s.insert(u.index());
    }
    s
}

/// A register set, as a fixed-width bitmask over architectural registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegSet(pub u64);

const _: () = assert!(NUM_ARCH_REGS <= 64, "RegSet assumes ≤64 architectural registers");

impl RegSet {
    /// The empty set.
    pub fn empty() -> RegSet {
        RegSet(0)
    }

    /// Inserts a register index.
    pub fn insert(&mut self, r: usize) {
        self.0 |= 1 << r;
    }

    /// Whether `r` is in the set.
    pub fn contains(&self, r: usize) -> bool {
        self.0 >> r & 1 == 1
    }

    /// Set union.
    pub fn union(self, o: RegSet) -> RegSet {
        RegSet(self.0 | o.0)
    }

    /// Set intersection.
    pub fn inter(self, o: RegSet) -> RegSet {
        RegSet(self.0 & o.0)
    }

    /// Set difference `self \ o`.
    pub fn minus(self, o: RegSet) -> RegSet {
        RegSet(self.0 & !o.0)
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates member register indices.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }
}

/// Per-instruction and per-block def/use plus block liveness.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// `use[b]`: registers read before any write within block `b`.
    pub use_: Vec<RegSet>,
    /// `def[b]`: registers written in block `b`.
    pub def: Vec<RegSet>,
    /// `live_in[b]`: registers live on entry to block `b`.
    pub live_in: Vec<RegSet>,
    /// `live_out[b]`: registers live on exit from block `b`.
    pub live_out: Vec<RegSet>,
}

impl Liveness {
    /// Computes liveness over `cfg`.
    pub fn compute(program: &Program, cfg: &Cfg) -> Liveness {
        let n = cfg.len();
        let mut use_ = vec![RegSet::empty(); n];
        let mut def = vec![RegSet::empty(); n];
        for (bi, b) in cfg.blocks().iter().enumerate() {
            for pc in b.range() {
                let inst = program.insts()[pc];
                use_[bi] = use_[bi].union(df_uses(&inst).minus(def[bi]));
                def[bi] = def[bi].union(df_defs(&inst));
            }
        }
        let mut live_in = vec![RegSet::empty(); n];
        let mut live_out = vec![RegSet::empty(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..n).rev() {
                let mut out = RegSet::empty();
                for &s in &cfg.blocks()[bi].succs {
                    out = out.union(live_in[s]);
                }
                let inn = use_[bi].union(out.minus(def[bi]));
                if out != live_out[bi] || inn != live_in[bi] {
                    live_out[bi] = out;
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness { use_, def, live_in, live_out }
    }

    /// Registers live just before instruction `pc` of block `bi` (computed
    /// by walking the block backward from `live_out`).
    pub fn live_before(&self, program: &Program, cfg: &Cfg, pc: usize) -> RegSet {
        let bi = cfg.block_of(pc);
        let b = &cfg.blocks()[bi];
        let mut live = self.live_out[bi];
        for i in b.range().rev() {
            if i < pc {
                break;
            }
            let inst = program.insts()[i];
            live = live.minus(df_defs(&inst)).union(df_uses(&inst));
        }
        live
    }
}

/// Register loop-carried dependencies of `l`: registers defined inside the
/// loop that are live on entry to the header (their values flow around the
/// back edge into the next iteration).
pub fn loop_lcds(_program: &Program, _cfg: &Cfg, live: &Liveness, l: &Loop) -> RegSet {
    let mut defined = RegSet::empty();
    for &bi in &l.blocks {
        defined = defined.union(live.def[bi]);
    }
    defined.inter(live.live_in[l.header])
}

/// Registers defined anywhere in the given block set.
pub fn defs_in(live: &Liveness, blocks: &BTreeSet<usize>) -> RegSet {
    blocks.iter().fold(RegSet::empty(), |acc, &b| acc.union(live.def[b]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Dominators;
    use crate::loops::find_loops;
    use lf_isa::{reg, AluOp, BranchCond, MemSize, ProgramBuilder};

    #[test]
    fn regset_basics() {
        let mut s = RegSet::empty();
        s.insert(3);
        s.insert(40);
        assert!(s.contains(3) && s.contains(40) && !s.contains(4));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 40]);
        assert_eq!(s.len(), 2);
        assert!(s.minus(s).is_empty());
    }

    #[test]
    fn liveness_through_diamond() {
        let mut b = ProgramBuilder::new();
        let t = b.label("t");
        let j = b.label("j");
        b.li(reg::x(5), 1);
        b.branch(BranchCond::Eq, reg::x(1), reg::ZERO, t);
        b.alu(AluOp::Add, reg::x(2), reg::x(5), reg::x(5));
        b.jump(j);
        b.bind(t);
        b.alui(AluOp::Add, reg::x(2), reg::x(5), 2);
        b.bind(j);
        b.store(reg::x(2), reg::ZERO, 0, MemSize::B8);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let live = Liveness::compute(&p, &cfg);
        // x5 is live into both arms; x2 is live into the join.
        let join = cfg.block_of(6);
        assert!(live.live_in[join].contains(2));
        let arm = cfg.block_of(2);
        assert!(live.live_in[arm].contains(5));
        assert!(!live.live_out[join].contains(2));
    }

    #[test]
    fn lcd_detection_finds_induction_variable_only() {
        // x1 is the IV; x3 is recomputed from memory every iteration (no
        // LCD); x2 is a loop-invariant bound (live-in but not defined).
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.li(reg::x(1), 0);
        b.li(reg::x(2), 80);
        b.bind(top);
        b.load(reg::x(3), reg::x(1), 0x100, MemSize::B8);
        b.alui(AluOp::Mul, reg::x(3), reg::x(3), 3);
        b.store(reg::x(3), reg::x(1), 0x100, MemSize::B8);
        b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
        b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        let live = Liveness::compute(&p, &cfg);
        let loops = find_loops(&cfg, &dom);
        let lcds = loop_lcds(&p, &cfg, &live, &loops[0]);
        assert_eq!(lcds.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn reduction_register_is_an_lcd() {
        // x4 accumulates across iterations: must be an LCD.
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.li(reg::x(1), 0);
        b.li(reg::x(4), 0);
        b.bind(top);
        b.load(reg::x(3), reg::x(1), 0x100, MemSize::B8);
        b.alu(AluOp::Add, reg::x(4), reg::x(4), reg::x(3));
        b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
        b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        let live = Liveness::compute(&p, &cfg);
        let loops = find_loops(&cfg, &dom);
        let lcds = loop_lcds(&p, &cfg, &live, &loops[0]);
        assert!(lcds.contains(1) && lcds.contains(4));
        assert!(!lcds.contains(3));
    }
}
