//! Dominator analysis (iterative data-flow formulation).

use crate::cfg::Cfg;

/// Dominator sets for each block, as bitsets over block indices.
#[derive(Debug, Clone)]
pub struct Dominators {
    sets: Vec<Vec<u64>>,
    words: usize,
}

impl Dominators {
    /// Computes dominators of every block reachable from the entry.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.len();
        let words = n.div_ceil(64).max(1);
        let full = {
            let mut v = vec![u64::MAX; words];
            // Mask off bits past n.
            let extra = words * 64 - n;
            if extra > 0 {
                v[words - 1] = u64::MAX >> extra;
            }
            v
        };
        let mut sets = vec![full.clone(); n];
        if n == 0 {
            return Dominators { sets, words };
        }
        // Every analysis root (entry and call targets) dominates only
        // itself, anchoring the fixpoint for callee subgraphs.
        for &r in cfg.roots() {
            sets[r] = vec![0; words];
            sets[r][r / 64] |= 1 << (r % 64);
        }

        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                if cfg.roots().contains(&b) {
                    continue;
                }
                let preds = &cfg.blocks()[b].preds;
                let mut new = full.clone();
                if preds.is_empty() {
                    // Unreachable block: dominated by everything (vacuous).
                    continue;
                }
                for &p in preds {
                    for w in 0..words {
                        new[w] &= sets[p][w];
                    }
                }
                new[b / 64] |= 1 << (b % 64);
                if new != sets[b] {
                    sets[b] = new;
                    changed = true;
                }
            }
        }
        Dominators { sets, words }
    }

    /// Whether block `a` dominates block `b`.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        self.sets[b][a / 64] >> (a % 64) & 1 == 1
    }

    /// The dominator set of `b` as block indices.
    pub fn dominators_of(&self, b: usize) -> Vec<usize> {
        let mut v = Vec::new();
        for w in 0..self.words {
            let mut bits = self.sets[b][w];
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                v.push(w * 64 + i);
                bits &= bits - 1;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_isa::{reg, AluOp, BranchCond, ProgramBuilder};

    #[test]
    fn diamond_dominators() {
        let mut b = ProgramBuilder::new();
        let t = b.label("t");
        let j = b.label("j");
        b.branch(BranchCond::Eq, reg::x(1), reg::ZERO, t);
        b.alui(AluOp::Add, reg::x(2), reg::x(2), 1);
        b.jump(j);
        b.bind(t);
        b.alui(AluOp::Add, reg::x(2), reg::x(2), 2);
        b.bind(j);
        b.halt();
        let p = b.build().unwrap();
        let cfg = crate::cfg::Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        // Entry dominates all; neither branch arm dominates the join.
        for b in 0..cfg.len() {
            assert!(dom.dominates(0, b));
        }
        let join = cfg.block_of(4);
        assert!(!dom.dominates(cfg.block_of(1), join));
        assert!(!dom.dominates(cfg.block_of(3), join));
        assert!(dom.dominates(join, join));
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let inner = b.label("inner");
        b.li(reg::x(1), 4);
        b.bind(top);
        b.alui(AluOp::Sub, reg::x(1), reg::x(1), 1);
        b.branch(BranchCond::Eq, reg::x(1), reg::ZERO, inner);
        b.nop();
        b.bind(inner);
        b.branch(BranchCond::Ne, reg::x(1), reg::ZERO, top);
        b.halt();
        let p = b.build().unwrap();
        let cfg = crate::cfg::Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        let header = cfg.block_of(1);
        let tail = cfg.block_of(4);
        assert!(dom.dominates(header, tail));
        assert!(!dom.dominates(tail, header));
    }
}
