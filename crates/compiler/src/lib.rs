//! # lf-compiler — hint insertion for LoopFrog
//!
//! The compiler side of *LoopFrog: In-Core Hint-Based Loop Parallelization*
//! (paper §5): control-flow analysis over `lf-isa` programs, register
//! loop-carried-dependence detection, profile-guided loop selection, and
//! automatic placement of the `detach`/`reattach`/`sync` hints.
//!
//! The entry point is [`annotate`]: given a program and an execution profile
//! (from [`lf_isa::Emulator`]), it returns a sequentially equivalent program
//! whose selected loops carry hints, plus per-loop selection reports.
//!
//! # Examples
//!
//! ```
//! use lf_compiler::{annotate, SelectOptions};
//! use lf_isa::{reg, AluOp, BranchCond, Emulator, Memory, MemSize, ProgramBuilder};
//!
//! // for i in 0..256 { a[i] *= 3 }
//! let mut b = ProgramBuilder::new();
//! let top = b.label("top");
//! b.li(reg::x(1), 0);
//! b.li(reg::x(2), 256 * 8);
//! b.bind(top);
//! b.load(reg::x(3), reg::x(1), 0x1000, MemSize::B8);
//! b.alui(AluOp::Mul, reg::x(3), reg::x(3), 3);
//! b.store(reg::x(3), reg::x(1), 0x1000, MemSize::B8);
//! b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
//! b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
//! b.halt();
//! let program = b.build()?;
//!
//! let mut emu = Emulator::new(&program, Memory::new(0x2000));
//! emu.run(10_000_000)?;
//! let annotated = annotate(&program, emu.profile(), &SelectOptions::default());
//! assert!(annotated.reports[0].placement.is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cfg;
pub mod dataflow;
pub mod dom;
pub mod hints;
pub mod loops;
pub mod rewrite;
pub mod select;

pub use cfg::Cfg;
pub use dataflow::{loop_lcds, Liveness, RegSet};
pub use dom::Dominators;
pub use hints::{plan_loop, Placement, PlanError};
pub use loops::{find_loops, Loop};
pub use rewrite::Rewriter;
pub use select::{annotate, Annotated, LoopReport, SelectOptions};
