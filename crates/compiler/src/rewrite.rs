//! Program rewriting with address relocation.
//!
//! Hint insertion shifts instruction addresses, so every branch/jump/call
//! target and hint region id must be remapped. The [`Rewriter`] collects
//! "insert before address X" requests expressed in the *original* address
//! space (including the targets and regions of the inserted instructions
//! themselves) and produces a relocated program in one pass.
//!
//! Relocation rule: a control transfer to original address `X` lands on the
//! first instruction inserted before `X`, so inserted hints are executed on
//! every path that reached `X`.

use lf_isa::{Inst, Program};
use std::collections::BTreeMap;

/// Collects insertions and performs relocation.
#[derive(Debug, Default)]
pub struct Rewriter {
    inserts: BTreeMap<usize, Vec<Inst>>,
}

impl Rewriter {
    /// Creates an empty rewriter.
    pub fn new() -> Rewriter {
        Rewriter::default()
    }

    /// Queues `inst` (with targets/regions in original address space) for
    /// insertion immediately before original address `at`.
    pub fn insert_before(&mut self, at: usize, inst: Inst) {
        self.inserts.entry(at).or_default().push(inst);
    }

    /// Number of queued insertions.
    pub fn pending(&self) -> usize {
        self.inserts.values().map(Vec::len).sum()
    }

    /// The relocated address of original address `orig` (where a branch to
    /// `orig` lands: the first instruction inserted before it, if any).
    pub fn map_addr(&self, orig: usize) -> usize {
        let shift: usize = self.inserts.range(..orig).map(|(_, v)| v.len()).sum();
        orig + shift
    }

    /// Applies all insertions to `program`, remapping every target and
    /// region id (of both original and inserted instructions).
    pub fn apply(&self, program: &Program) -> Program {
        let remap = |inst: Inst| -> Inst {
            match inst {
                Inst::Branch { cond, a, b, target } => {
                    Inst::Branch { cond, a, b, target: self.map_addr(target) }
                }
                Inst::Jump { target } => Inst::Jump { target: self.map_addr(target) },
                Inst::Call { target, link } => Inst::Call { target: self.map_addr(target), link },
                Inst::Hint { kind, region } => {
                    Inst::Hint { kind, region: lf_isa::RegionId(self.map_addr(region.0)) }
                }
                other => other,
            }
        };
        let mut out = Vec::with_capacity(program.len() + self.pending());
        let mut labels = BTreeMap::new();
        for (pc, inst) in program.insts().iter().enumerate() {
            if let Some(ins) = self.inserts.get(&pc) {
                for i in ins {
                    out.push(remap(*i));
                }
            }
            if let Some(l) = program.label_at(pc) {
                labels.insert(out.len(), l.to_string());
            }
            out.push(remap(*inst));
        }
        // Insertions at or past the end append.
        for (at, ins) in self.inserts.range(program.len()..) {
            let _ = at;
            for i in ins {
                out.push(remap(*i));
            }
        }
        Program::with_labels(out, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_isa::{reg, AluOp, BranchCond, Emulator, HintKind, Memory, ProgramBuilder, RegionId};

    fn counted_loop() -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.li(reg::x(1), 5);
        b.bind(top);
        b.alui(AluOp::Sub, reg::x(1), reg::x(1), 1);
        b.branch(BranchCond::Ne, reg::x(1), reg::ZERO, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn map_addr_accounts_for_prior_inserts() {
        let mut rw = Rewriter::new();
        rw.insert_before(1, Inst::Nop);
        rw.insert_before(1, Inst::Nop);
        rw.insert_before(3, Inst::Nop);
        assert_eq!(rw.map_addr(0), 0);
        assert_eq!(rw.map_addr(1), 1, "lands on first inserted inst");
        assert_eq!(rw.map_addr(2), 4);
        assert_eq!(rw.map_addr(3), 5);
    }

    #[test]
    fn branch_targets_are_relocated_and_semantics_preserved() {
        let p = counted_loop();
        let mut rw = Rewriter::new();
        // Insert a hint at the loop top: the back edge must land on it.
        rw.insert_before(1, Inst::Hint { kind: HintKind::Detach, region: RegionId(1) });
        let q = rw.apply(&p);
        assert_eq!(q.len(), p.len() + 1);
        match q.insts()[3] {
            Inst::Branch { target, .. } => assert_eq!(target, 1),
            other => panic!("expected branch, got {other}"),
        }
        // Hint region relocated identically.
        assert_eq!(q.insts()[1].hint(), Some((HintKind::Detach, RegionId(1))));

        // Functionally identical to the original.
        let mut e1 = Emulator::new(&p, Memory::new(16));
        e1.run(1000).unwrap();
        let mut e2 = Emulator::new(&q, Memory::new(16));
        e2.run(1000).unwrap();
        assert_eq!(e1.state_checksum(), e2.state_checksum());
    }

    #[test]
    fn labels_follow_their_instructions() {
        let p = counted_loop();
        let mut rw = Rewriter::new();
        rw.insert_before(1, Inst::Nop);
        let q = rw.apply(&p);
        assert_eq!(q.label_at(2), Some("top"));
    }

    #[test]
    fn no_inserts_is_identity() {
        let p = counted_loop();
        let q = Rewriter::new().apply(&p);
        assert_eq!(p.insts(), q.insts());
    }
}
