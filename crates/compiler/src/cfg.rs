//! Control-flow graph construction over `lf-isa` programs.

use lf_isa::{Inst, Program};

/// A basic block: the half-open instruction range `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction address.
    pub start: usize,
    /// One past the last instruction address.
    pub end: usize,
    /// Successor block indices.
    pub succs: Vec<usize>,
    /// Predecessor block indices.
    pub preds: Vec<usize>,
}

impl Block {
    /// Instruction addresses of this block.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// Address of the block's terminator (last instruction).
    pub fn terminator(&self) -> usize {
        self.end - 1
    }
}

/// A control-flow graph: blocks in address order, block 0 is the entry.
///
/// `Call` instructions are modeled as straight-line (fall-through edge to
/// the return site); the callee is analyzed separately via the extra
/// [`Cfg::roots`] and its register effects are summarized by the calling
/// convention (see `dataflow`).
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<Block>,
    block_of: Vec<usize>,
    roots: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    ///
    /// Indirect jumps (`JumpReg`) are treated as block terminators with no
    /// static successors; loops containing them are conservatively skipped
    /// by later passes (function returns are fine — the call site's
    /// fall-through continues a different block).
    pub fn build(program: &Program) -> Cfg {
        let n = program.len();
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (pc, inst) in program.insts().iter().enumerate() {
            match *inst {
                Inst::Branch { target, .. } => {
                    if target < n {
                        leader[target] = true;
                    }
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Inst::Jump { target } | Inst::Call { target, .. } => {
                    if target < n {
                        leader[target] = true;
                    }
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Inst::JumpReg { .. } | Inst::Halt if pc + 1 < n => {
                    leader[pc + 1] = true;
                }
                _ => {}
            }
        }
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0;
        for (pc, &lead) in leader.iter().enumerate().take(n) {
            if pc > 0 && lead {
                blocks.push(Block { start, end: pc, succs: vec![], preds: vec![] });
                start = pc;
            }
        }
        if n > 0 {
            blocks.push(Block { start, end: n, succs: vec![], preds: vec![] });
        }
        for (bi, b) in blocks.iter().enumerate() {
            for pc in b.range() {
                block_of[pc] = bi;
            }
        }
        // Edges.
        let find_block = |addr: usize| -> Option<usize> { (addr < n).then(|| block_of[addr]) };
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (bi, b) in blocks.iter().enumerate() {
            let term = b.terminator();
            match program.insts()[term] {
                Inst::Branch { target, .. } => {
                    if let Some(t) = find_block(target) {
                        edges.push((bi, t));
                    }
                    if let Some(f) = find_block(term + 1) {
                        edges.push((bi, f));
                    }
                }
                Inst::Jump { target } => {
                    if let Some(t) = find_block(target) {
                        edges.push((bi, t));
                    }
                }
                Inst::Call { .. } => {
                    // Straight-line model: control returns to the call's
                    // fall-through; the callee is a separate root.
                    if let Some(f) = find_block(term + 1) {
                        edges.push((bi, f));
                    }
                }
                Inst::JumpReg { .. } | Inst::Halt => {}
                _ => {
                    if let Some(f) = find_block(term + 1) {
                        edges.push((bi, f));
                    }
                }
            }
        }
        let mut roots = vec![0usize];
        for b in &blocks {
            if let Inst::Call { target, .. } = program.insts()[b.terminator()] {
                if target < n {
                    let r = block_of[target];
                    if !roots.contains(&r) {
                        roots.push(r);
                    }
                }
            }
        }
        for (u, v) in edges {
            if !blocks[u].succs.contains(&v) {
                blocks[u].succs.push(v);
            }
            if !blocks[v].preds.contains(&u) {
                blocks[v].preds.push(u);
            }
        }
        Cfg { blocks, block_of, roots }
    }

    /// Analysis roots: the entry block plus every call-target block.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// The blocks, in address order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block containing instruction address `pc`.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_isa::{reg, AluOp, BranchCond, ProgramBuilder};

    fn diamond() -> Program {
        // 0: branch → 3; 1: alu; 2: jump 4; 3: alu; 4: halt
        let mut b = ProgramBuilder::new();
        let then_l = b.label("then");
        let join = b.label("join");
        b.branch(BranchCond::Eq, reg::x(1), reg::ZERO, then_l);
        b.alui(AluOp::Add, reg::x(2), reg::x(2), 1);
        b.jump(join);
        b.bind(then_l);
        b.alui(AluOp::Add, reg::x(2), reg::x(2), 2);
        b.bind(join);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn diamond_has_four_blocks() {
        let p = diamond();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.len(), 4);
        assert_eq!(cfg.blocks()[0].succs.len(), 2);
        assert_eq!(cfg.blocks()[3].preds.len(), 2);
        assert_eq!(cfg.block_of(4), 3);
    }

    #[test]
    fn loop_backedge_detected_as_edge() {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.li(reg::x(1), 10);
        b.bind(top);
        b.alui(AluOp::Sub, reg::x(1), reg::x(1), 1);
        b.branch(BranchCond::Ne, reg::x(1), reg::ZERO, top);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.len(), 3);
        let loop_block = cfg.block_of(1);
        assert!(cfg.blocks()[loop_block].succs.contains(&loop_block));
    }

    #[test]
    fn halt_ends_a_block_without_successors() {
        let p = diamond();
        let cfg = Cfg::build(&p);
        let last = cfg.len() - 1;
        assert!(cfg.blocks()[last].succs.is_empty());
    }

    #[test]
    fn call_is_straight_line_and_callee_is_a_root() {
        let mut b = ProgramBuilder::new();
        let f = b.label("f");
        b.call(f, reg::RA);
        b.halt();
        b.bind(f);
        b.jump_reg(reg::RA);
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let call_b = cfg.block_of(0);
        let ret_b = cfg.block_of(1);
        let f_b = cfg.block_of(2);
        assert_eq!(cfg.blocks()[call_b].succs, vec![ret_b]);
        assert!(cfg.blocks()[f_b].succs.is_empty());
        assert_eq!(cfg.roots(), &[0, f_b]);
    }
}
