//! Profile-guided loop selection (paper §5.1).
//!
//! The paper's prototype uses profiling information to pick the most
//! profitable loops ("simulating perfect static loop selection"). This pass
//! scores every natural loop by dynamic coverage, trip count, and achievable
//! body size, and annotates the best candidates.

use crate::cfg::Cfg;
use crate::dataflow::Liveness;
use crate::dom::Dominators;
use crate::hints::{plan_loop, queue_hints, Placement, PlanError};
use crate::loops::{find_loops, Loop};
use crate::rewrite::Rewriter;
use lf_isa::{Inst, Profile, Program};

/// Selection thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectOptions {
    /// Maximum number of loops to annotate.
    pub max_loops: usize,
    /// Minimum mean trip count (iterations per loop entry).
    pub min_trip: f64,
    /// Minimum expected dynamic body instructions per iteration.
    pub min_body_score: f64,
    /// Minimum fraction of total dynamic instructions spent in the loop.
    pub min_coverage: f64,
}

impl Default for SelectOptions {
    fn default() -> SelectOptions {
        SelectOptions { max_loops: 8, min_trip: 4.0, min_body_score: 2.0, min_coverage: 0.01 }
    }
}

/// Per-loop outcome of selection.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// Header block start address (original program).
    pub header_addr: usize,
    /// Fraction of dynamic instructions inside the loop.
    pub coverage: f64,
    /// Mean iterations per loop entry.
    pub trip: f64,
    /// The chosen placement, when selected.
    pub placement: Option<Placement>,
    /// Why the loop was rejected, when it was.
    pub rejected: Option<String>,
}

/// Result of [`annotate`]: the hinted program plus per-loop reports.
#[derive(Debug, Clone)]
pub struct Annotated {
    /// The rewritten, hint-carrying program.
    pub program: Program,
    /// One report per natural loop, sorted by descending coverage.
    pub reports: Vec<LoopReport>,
}

fn loop_metrics(program: &Program, cfg: &Cfg, l: &Loop, profile: &Profile) -> (f64, f64) {
    let total: u64 = profile.exec_count.iter().sum();
    let mut dyn_insts = 0u64;
    for &b in &l.blocks {
        for pc in cfg.blocks()[b].range() {
            dyn_insts += profile.exec_count[pc];
        }
    }
    let header_execs = profile.exec_count[cfg.blocks()[l.header].start];
    let mut backedge_takens = 0u64;
    for &t in &l.tails {
        let term = cfg.blocks()[t].terminator();
        match program.insts()[term] {
            Inst::Branch { target, .. }
                if cfg.block_of(target.min(program.len() - 1)) == l.header =>
            {
                backedge_takens += profile.taken_count[term];
            }
            Inst::Jump { target } if cfg.block_of(target.min(program.len() - 1)) == l.header => {
                backedge_takens += profile.exec_count[term];
            }
            _ => {}
        }
    }
    let entries = header_execs.saturating_sub(backedge_takens).max(1);
    let coverage = if total == 0 { 0.0 } else { dyn_insts as f64 / total as f64 };
    let trip = header_execs as f64 / entries as f64;
    (coverage, trip)
}

/// Runs the full pipeline: CFG → loops → profile-guided selection → hint
/// insertion. Returns the annotated program and per-loop reports.
///
/// The returned program is sequentially equivalent to the input (hints are
/// NOPs); the `loopfrog` core exploits them.
pub fn annotate(program: &Program, profile: &Profile, opts: &SelectOptions) -> Annotated {
    let cfg = Cfg::build(program);
    let dom = Dominators::compute(&cfg);
    let live = Liveness::compute(program, &cfg);
    let loops = find_loops(&cfg, &dom);

    let mut scored: Vec<(usize, f64, f64)> = loops
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let (cov, trip) = loop_metrics(program, &cfg, l, profile);
            (i, cov, trip)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    let mut rw = Rewriter::new();
    let mut reports = Vec::new();
    let mut selected = 0usize;
    for (i, coverage, trip) in scored {
        let l = &loops[i];
        let header_addr = cfg.blocks()[l.header].start;
        let mut report =
            LoopReport { header_addr, coverage, trip, placement: None, rejected: None };
        if selected >= opts.max_loops {
            report.rejected = Some("selection budget exhausted".into());
        } else if coverage < opts.min_coverage {
            report.rejected = Some(format!("coverage {coverage:.4} below threshold"));
        } else if trip < opts.min_trip {
            report.rejected = Some(format!("mean trip count {trip:.1} too low"));
        } else {
            match plan_loop(program, &cfg, &dom, &live, &loops, l, Some(profile)) {
                Err(PlanError::IndirectJump) => {
                    report.rejected = Some("contains indirect jump".into())
                }
                Err(PlanError::NoSpine) => {
                    report.rejected = Some("no once-per-iteration spine".into())
                }
                Err(PlanError::NoLegalBoundary) => {
                    report.rejected = Some("no legal detach/reattach boundary".into())
                }
                Ok(p) if p.body_score < opts.min_body_score => {
                    report.rejected =
                        Some(format!("body too small ({:.1} insts/iter)", p.body_score));
                }
                Ok(p) => {
                    queue_hints(&mut rw, &p);
                    report.placement = Some(p);
                    selected += 1;
                }
            }
        }
        reports.push(report);
    }
    Annotated { program: rw.apply(program), reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_isa::{reg, AluOp, BranchCond, Emulator, MemSize, Memory, ProgramBuilder};

    fn profiled(p: &Program, mem: Memory) -> Profile {
        let mut emu = Emulator::new(p, mem);
        emu.run(10_000_000).unwrap();
        assert!(emu.is_halted());
        emu.profile().clone()
    }

    fn hot_array_loop() -> (Program, Memory) {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.li(reg::x(1), 0);
        b.li(reg::x(2), 256 * 8);
        b.bind(top);
        b.load(reg::x(3), reg::x(1), 0x1000, MemSize::B8);
        b.alui(AluOp::Mul, reg::x(3), reg::x(3), 3);
        b.store(reg::x(3), reg::x(1), 0x1000, MemSize::B8);
        b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
        b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top);
        b.halt();
        (b.build().unwrap(), Memory::new(0x2000))
    }

    #[test]
    fn hot_loop_is_selected_and_program_equivalent() {
        let (p, mem) = hot_array_loop();
        let prof = profiled(&p, mem.clone());
        let ann = annotate(&p, &prof, &SelectOptions::default());
        assert_eq!(ann.reports.len(), 1);
        assert!(ann.reports[0].placement.is_some(), "{:?}", ann.reports[0]);
        assert!(ann.program.len() > p.len());
        // The annotated program computes the same result.
        let mut e1 = Emulator::new(&p, mem.clone());
        e1.run(10_000_000).unwrap();
        let mut e2 = Emulator::new(&ann.program, mem);
        e2.run(10_000_000).unwrap();
        assert_eq!(e1.state_checksum(), e2.state_checksum());
    }

    #[test]
    fn cold_loop_is_rejected_by_coverage() {
        // A loop that runs twice amid a big hot loop elsewhere.
        let mut b = ProgramBuilder::new();
        let cold = b.label("cold");
        let hot = b.label("hot");
        b.li(reg::x(1), 2);
        b.bind(cold);
        b.alui(AluOp::Sub, reg::x(1), reg::x(1), 1);
        b.branch(BranchCond::Ne, reg::x(1), reg::ZERO, cold);
        b.li(reg::x(1), 0);
        b.li(reg::x(2), 4000);
        b.bind(hot);
        b.load(reg::x(3), reg::x(1), 0x100, MemSize::B8);
        b.alui(AluOp::Mul, reg::x(3), reg::x(3), 3);
        b.store(reg::x(3), reg::x(1), 0x100, MemSize::B8);
        b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
        b.branch(BranchCond::Lt, reg::x(1), reg::x(2), hot);
        b.halt();
        let p = b.build().unwrap();
        let prof = profiled(&p, Memory::new(0x4000));
        let ann = annotate(&p, &prof, &SelectOptions::default());
        let cold_report = ann.reports.iter().find(|r| r.header_addr == 1).unwrap();
        assert!(cold_report.rejected.is_some());
        let hot_report = ann.reports.iter().find(|r| r.header_addr != 1).unwrap();
        assert!(hot_report.placement.is_some());
    }

    #[test]
    fn low_trip_loop_is_rejected() {
        let mut b = ProgramBuilder::new();
        let outer = b.label("outer");
        let inner = b.label("inner");
        b.li(reg::x(5), 500);
        b.bind(outer);
        // Inner loop runs twice per outer iteration.
        b.li(reg::x(1), 2);
        b.bind(inner);
        b.load(reg::x(3), reg::x(1), 0x100, MemSize::B8);
        b.alui(AluOp::Add, reg::x(3), reg::x(3), 1);
        b.store(reg::x(3), reg::x(1), 0x100, MemSize::B8);
        b.alui(AluOp::Sub, reg::x(1), reg::x(1), 1);
        b.branch(BranchCond::Ne, reg::x(1), reg::ZERO, inner);
        b.alui(AluOp::Sub, reg::x(5), reg::x(5), 1);
        b.branch(BranchCond::Ne, reg::x(5), reg::ZERO, outer);
        b.halt();
        let p = b.build().unwrap();
        let prof = profiled(&p, Memory::new(0x1000));
        let ann = annotate(&p, &prof, &SelectOptions::default());
        let inner_report = ann.reports.iter().find(|r| r.trip < 3.0).unwrap();
        assert!(inner_report.rejected.as_deref().unwrap().contains("trip"));
    }
}
