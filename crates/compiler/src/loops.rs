//! Natural-loop detection.

use crate::cfg::Cfg;
use crate::dom::Dominators;
use std::collections::BTreeSet;

/// A natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// Header block index.
    pub header: usize,
    /// Back-edge source blocks (tails).
    pub tails: Vec<usize>,
    /// All member blocks (including the header), sorted.
    pub blocks: BTreeSet<usize>,
    /// Exit edges `(from_block_in_loop, to_block_outside)`.
    pub exits: Vec<(usize, usize)>,
    /// Nesting depth (0 = outermost).
    pub depth: usize,
}

impl Loop {
    /// Whether `block` belongs to this loop.
    pub fn contains(&self, block: usize) -> bool {
        self.blocks.contains(&block)
    }
}

/// Finds all natural loops of `cfg`, merging loops that share a header.
/// Loops are returned sorted by header address, with nesting depths filled
/// in (a loop nested inside another has a larger depth).
pub fn find_loops(cfg: &Cfg, dom: &Dominators) -> Vec<Loop> {
    let mut loops: Vec<Loop> = Vec::new();
    for (b, blk) in cfg.blocks().iter().enumerate() {
        for &s in &blk.succs {
            if dom.dominates(s, b) {
                // Back edge b → s; collect the natural loop of (b, s).
                let mut body = BTreeSet::new();
                body.insert(s);
                let mut stack = vec![b];
                while let Some(x) = stack.pop() {
                    if body.insert(x) {
                        for &p in &cfg.blocks()[x].preds {
                            stack.push(p);
                        }
                    }
                }
                if let Some(l) = loops.iter_mut().find(|l| l.header == s) {
                    l.tails.push(b);
                    l.blocks.extend(body);
                } else {
                    loops.push(Loop {
                        header: s,
                        tails: vec![b],
                        blocks: body,
                        exits: vec![],
                        depth: 0,
                    });
                }
            }
        }
    }
    for l in loops.iter_mut() {
        let mut exits = Vec::new();
        for &m in &l.blocks {
            for &s in &cfg.blocks()[m].succs {
                if !l.blocks.contains(&s) {
                    exits.push((m, s));
                }
            }
        }
        l.exits = exits;
    }
    // Nesting depth: count enclosing loops.
    let snapshot: Vec<(usize, BTreeSet<usize>)> =
        loops.iter().map(|l| (l.header, l.blocks.clone())).collect();
    for l in loops.iter_mut() {
        l.depth = snapshot
            .iter()
            .filter(|(h, blocks)| *h != l.header && blocks.contains(&l.header))
            .count();
    }
    loops.sort_by_key(|l| l.header);
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_isa::{reg, AluOp, BranchCond, ProgramBuilder};

    #[test]
    fn simple_counted_loop() {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.li(reg::x(1), 10);
        b.bind(top);
        b.alui(AluOp::Sub, reg::x(1), reg::x(1), 1);
        b.branch(BranchCond::Ne, reg::x(1), reg::ZERO, top);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        let loops = find_loops(&cfg, &dom);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.blocks.len(), 1);
        assert_eq!(l.exits.len(), 1);
        assert_eq!(l.depth, 0);
    }

    #[test]
    fn nested_loops_have_depths() {
        let mut b = ProgramBuilder::new();
        let outer = b.label("outer");
        let inner = b.label("inner");
        b.li(reg::x(1), 4);
        b.bind(outer);
        b.li(reg::x(2), 4);
        b.bind(inner);
        b.alui(AluOp::Sub, reg::x(2), reg::x(2), 1);
        b.branch(BranchCond::Ne, reg::x(2), reg::ZERO, inner);
        b.alui(AluOp::Sub, reg::x(1), reg::x(1), 1);
        b.branch(BranchCond::Ne, reg::x(1), reg::ZERO, outer);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        let loops = find_loops(&cfg, &dom);
        assert_eq!(loops.len(), 2);
        let outer_l = loops.iter().find(|l| l.depth == 0).unwrap();
        let inner_l = loops.iter().find(|l| l.depth == 1).unwrap();
        assert!(outer_l.blocks.len() > inner_l.blocks.len());
        assert!(outer_l.blocks.is_superset(&inner_l.blocks));
    }

    #[test]
    fn loop_with_break_has_two_exits() {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let out = b.label("out");
        b.li(reg::x(1), 10);
        b.bind(top);
        b.alui(AluOp::Sub, reg::x(1), reg::x(1), 1);
        b.branch(BranchCond::Eq, reg::x(1), reg::x(2), out); // break
        b.branch(BranchCond::Ne, reg::x(1), reg::ZERO, top);
        b.bind(out);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let dom = Dominators::compute(&cfg);
        let loops = find_loops(&cfg, &dom);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].exits.len(), 2);
    }
}
