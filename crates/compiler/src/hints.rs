//! Hint placement (paper §5.3).
//!
//! For a selected loop, the pass annotates every exit edge with a `sync` and
//! searches the placements of `detach` and `reattach` that maximize the
//! (profile-weighted) body size, subject to the legality rule: *no register
//! defined in the body may be live at the continuation* — the body and the
//! continuation may only consume values produced by their iteration's
//! header, so the boundaries must confine every register loop-carried
//! dependence to the header + continuation sections.

use crate::cfg::Cfg;
use crate::dataflow::{df_defs, Liveness, RegSet};
use crate::dom::Dominators;
use crate::loops::Loop;
use lf_isa::{HintKind, Inst, Profile, Program, RegionId};

/// A legal hint placement for one loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Original address the `detach` is inserted before (header→body
    /// boundary).
    pub detach_at: usize,
    /// Original address the `reattach` is inserted before (body→continuation
    /// boundary). Also the region id: the successor epoch starts here.
    pub reattach_at: usize,
    /// Original block-start addresses receiving a `sync` (loop-exit
    /// targets).
    pub sync_at: Vec<usize>,
    /// Expected dynamic body instructions per iteration (profile-weighted
    /// when a profile is available, else static).
    pub body_score: f64,
}

/// Why no placement was produced for a loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The loop contains an indirect jump; its CFG is unsound.
    IndirectJump,
    /// No spine block executes exactly once per iteration.
    NoSpine,
    /// Every candidate boundary pair violates the register-dataflow rule or
    /// yields an empty body.
    NoLegalBoundary,
}

/// Blocks of `l` that execute exactly once per iteration: they dominate
/// every back-edge source and belong to no loop nested inside `l`.
fn spine_blocks(l: &Loop, all_loops: &[Loop], dom: &Dominators) -> Vec<usize> {
    let mut spine: Vec<usize> = l
        .blocks
        .iter()
        .copied()
        .filter(|&b| l.tails.iter().all(|&t| dom.dominates(b, t)))
        .filter(|&b| {
            !all_loops.iter().any(|inner| {
                inner.header != l.header
                    && l.blocks.contains(&inner.header)
                    && inner.blocks.contains(&b)
            })
        })
        .collect();
    // Dominance order (B before B' iff B dominates B').
    spine.sort_by(|&a, &b| {
        if a == b {
            std::cmp::Ordering::Equal
        } else if dom.dominates(a, b) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });
    spine
}

/// Searches the legal placement with the largest body for `l`.
///
/// # Errors
///
/// Returns [`PlanError`] if the loop cannot be annotated.
pub fn plan_loop(
    program: &Program,
    cfg: &Cfg,
    dom: &Dominators,
    live: &Liveness,
    all_loops: &[Loop],
    l: &Loop,
    profile: Option<&Profile>,
) -> Result<Placement, PlanError> {
    for &b in &l.blocks {
        if matches!(program.insts()[cfg.blocks()[b].terminator()], Inst::JumpReg { .. }) {
            return Err(PlanError::IndirectJump);
        }
    }
    let spine = spine_blocks(l, all_loops, dom);
    if spine.is_empty() {
        return Err(PlanError::NoSpine);
    }
    debug_assert_eq!(spine[0], l.header, "header is the first spine block");

    // Iterations executed (for normalizing the profile-weighted score).
    let iters =
        profile.map(|p| p.exec_count[cfg.blocks()[l.header].start].max(1)).unwrap_or(1) as f64;
    let weight =
        |pc: usize| -> f64 { profile.map(|p| p.exec_count[pc] as f64 / iters).unwrap_or(1.0) };

    // Candidate boundary positions: instruction addresses within spine
    // blocks ("insert before" semantics). The terminator of a tail must
    // stay in the continuation, which holds because `r <= terminator`.
    let positions: Vec<(usize, usize)> = spine
        .iter()
        .enumerate()
        .flat_map(|(si, &b)| cfg.blocks()[b].range().map(move |pc| (si, pc)))
        .collect();

    // Defs of full blocks strictly between the detach and reattach blocks:
    // Bi dominates B, Bj does not dominate B.
    let body_full_defs = |bi: usize, bj: usize| -> RegSet {
        let mut s = RegSet::empty();
        for &b in &l.blocks {
            if b != bi && b != bj && dom.dominates(bi, b) && !dom.dominates(bj, b) {
                s = s.union(live.def[b]);
            }
        }
        s
    };
    let insts_defs = |range: std::ops::Range<usize>| -> RegSet {
        range.fold(RegSet::empty(), |acc, pc| acc.union(df_defs(&program.insts()[pc])))
    };
    let insts_score = |range: std::ops::Range<usize>| -> f64 { range.map(weight).sum() };
    let blocks_between_score = |bi: usize, bj: usize| -> f64 {
        l.blocks
            .iter()
            .filter(|&&b| b != bi && b != bj && dom.dominates(bi, b) && !dom.dominates(bj, b))
            .map(|&b| insts_score(cfg.blocks()[b].range()))
            .sum()
    };

    let mut best: Option<Placement> = None;
    for (i, &(si, d)) in positions.iter().enumerate() {
        for &(sj, r) in positions.iter().skip(i + 1) {
            let (bi, bj) = (spine[si], spine[sj]);
            let (defs, score) = if si == sj {
                (insts_defs(d..r), insts_score(d..r))
            } else {
                let defs = insts_defs(d..cfg.blocks()[bi].end)
                    .union(insts_defs(cfg.blocks()[bj].start..r))
                    .union(body_full_defs(bi, bj));
                let score = insts_score(d..cfg.blocks()[bi].end)
                    + insts_score(cfg.blocks()[bj].start..r)
                    + blocks_between_score(bi, bj);
                (defs, score)
            };
            if score <= 0.0 {
                continue;
            }
            // Legality: body defs must be dead at the continuation.
            let live_at_r = live.live_before(program, cfg, r);
            if !defs.inter(live_at_r).is_empty() {
                continue;
            }
            if best.as_ref().is_none_or(|b| score > b.body_score) {
                let mut sync_at: Vec<usize> =
                    l.exits.iter().map(|&(_, v)| cfg.blocks()[v].start).collect();
                sync_at.sort_unstable();
                sync_at.dedup();
                best = Some(Placement { detach_at: d, reattach_at: r, sync_at, body_score: score });
            }
        }
    }
    best.ok_or(PlanError::NoLegalBoundary)
}

/// Queues one placement's hints into `rw` (original address space; the
/// region id is the reattach address, where the successor epoch starts).
pub fn queue_hints(rw: &mut crate::rewrite::Rewriter, p: &Placement) {
    let region = RegionId(p.reattach_at);
    rw.insert_before(p.detach_at, Inst::Hint { kind: HintKind::Detach, region });
    rw.insert_before(p.reattach_at, Inst::Hint { kind: HintKind::Reattach, region });
    for &s in &p.sync_at {
        rw.insert_before(s, Inst::Hint { kind: HintKind::Sync, region });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Dominators;
    use crate::loops::find_loops;
    use lf_isa::{reg, AluOp, BranchCond, MemSize, ProgramBuilder};

    fn analyze(p: &Program) -> (Cfg, Dominators, Liveness, Vec<Loop>) {
        let cfg = Cfg::build(p);
        let dom = Dominators::compute(&cfg);
        let live = Liveness::compute(p, &cfg);
        let loops = find_loops(&cfg, &dom);
        (cfg, dom, live, loops)
    }

    /// for i { a[i] = a[i]*3; i += 8 } — the load/mul/store belong in the
    /// body, the induction update and branch in the continuation.
    fn array_loop() -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.li(reg::x(1), 0);
        b.li(reg::x(2), 800);
        b.bind(top);
        b.load(reg::x(3), reg::x(1), 0x100, MemSize::B8); // 2
        b.alui(AluOp::Mul, reg::x(3), reg::x(3), 3); // 3
        b.store(reg::x(3), reg::x(1), 0x100, MemSize::B8); // 4
        b.alui(AluOp::Add, reg::x(1), reg::x(1), 8); // 5
        b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top); // 6
        b.halt(); // 7
        b.build().unwrap()
    }

    #[test]
    fn places_body_around_independent_work() {
        let p = array_loop();
        let (cfg, dom, live, loops) = analyze(&p);
        let pl = plan_loop(&p, &cfg, &dom, &live, &loops, &loops[0], None).unwrap();
        // Body must cover the load/mul/store (pcs 2..5) and stop before the
        // induction update (pc 5), since x1 is live at the continuation.
        assert_eq!(pl.detach_at, 2);
        assert_eq!(pl.reattach_at, 5);
        assert_eq!(pl.sync_at, vec![7]);
        assert!((pl.body_score - 3.0).abs() < 1e-9);
    }

    #[test]
    fn reduction_loop_has_no_legal_boundary() {
        // x4 accumulates from x3 every iteration: every candidate body's
        // defs are consumed downstream, so no boundary is legal (the paper
        // notes loops with complex register LCD chains get overly small or
        // no bodies).
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.li(reg::x(1), 0);
        b.li(reg::x(4), 0);
        b.bind(top);
        b.load(reg::x(3), reg::x(1), 0x100, MemSize::B8); // 2
        b.alui(AluOp::Mul, reg::x(3), reg::x(3), 5); // 3
        b.alu(AluOp::Add, reg::x(4), reg::x(4), reg::x(3)); // 4 (LCD def)
        b.alui(AluOp::Add, reg::x(1), reg::x(1), 8); // 5
        b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top); // 6
        b.halt();
        let p = b.build().unwrap();
        let (cfg, dom, live, loops) = analyze(&p);
        let r = plan_loop(&p, &cfg, &dom, &live, &loops, &loops[0], None);
        assert_eq!(r.unwrap_err(), PlanError::NoLegalBoundary);
    }

    #[test]
    fn multi_block_body_with_branch() {
        // Body contains an if/else diamond; the placement must span it.
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let odd = b.label("odd");
        let join = b.label("join");
        b.li(reg::x(1), 0);
        b.li(reg::x(2), 512);
        b.bind(top);
        b.load(reg::x(3), reg::x(1), 0x100, MemSize::B8); // 2
        b.alui(AluOp::And, reg::x(4), reg::x(3), 1); // 3
        b.branch(BranchCond::Ne, reg::x(4), reg::ZERO, odd); // 4
        b.alui(AluOp::Mul, reg::x(3), reg::x(3), 5); // 5
        b.jump(join); // 6
        b.bind(odd);
        b.alui(AluOp::Add, reg::x(3), reg::x(3), 11); // 7
        b.bind(join);
        b.store(reg::x(3), reg::x(1), 0x100, MemSize::B8); // 8
        b.alui(AluOp::Add, reg::x(1), reg::x(1), 8); // 9
        b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top); // 10
        b.halt();
        let p = b.build().unwrap();
        let (cfg, dom, live, loops) = analyze(&p);
        let pl = plan_loop(&p, &cfg, &dom, &live, &loops, &loops[0], None).unwrap();
        assert_eq!(pl.detach_at, 2);
        assert_eq!(pl.reattach_at, 9, "body spans the diamond through the store");
    }

    #[test]
    fn profile_weights_prefer_hot_side() {
        let p = array_loop();
        let (cfg, dom, live, loops) = analyze(&p);
        // Fake profile: loop ran 100 iterations.
        let mut prof = Profile { exec_count: vec![0; p.len()], taken_count: vec![0; p.len()] };
        for pc in 2..=6 {
            prof.exec_count[pc] = 100;
        }
        prof.exec_count[0] = 1;
        prof.exec_count[1] = 1;
        let pl = plan_loop(&p, &cfg, &dom, &live, &loops, &loops[0], Some(&prof)).unwrap();
        assert!((pl.body_score - 3.0).abs() < 1e-9, "per-iteration score");
    }

    #[test]
    fn indirect_jump_loop_is_rejected() {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        b.li(reg::x(1), 4);
        b.bind(top);
        b.li(reg::x(9), 3);
        b.jump_reg(reg::x(9)); // jumps back to pc 1... forms a weird loop
        b.alui(AluOp::Sub, reg::x(1), reg::x(1), 1);
        b.branch(BranchCond::Ne, reg::x(1), reg::ZERO, top);
        b.halt();
        let p = b.build().unwrap();
        let (cfg, dom, live, loops) = analyze(&p);
        for l in &loops {
            let r = plan_loop(&p, &cfg, &dom, &live, &loops, l, None);
            assert!(
                r.is_err()
                    || !l.blocks.iter().any(|&bb| {
                        matches!(p.insts()[cfg.blocks()[bb].terminator()], Inst::JumpReg { .. })
                    })
            );
        }
    }

    #[test]
    fn queue_hints_roundtrip_is_semantics_preserving() {
        let p = array_loop();
        let (cfg, dom, live, loops) = analyze(&p);
        let pl = plan_loop(&p, &cfg, &dom, &live, &loops, &loops[0], None).unwrap();
        let mut rw = crate::rewrite::Rewriter::new();
        queue_hints(&mut rw, &pl);
        let q = rw.apply(&p);
        assert_eq!(q.len(), p.len() + 3);
        let mut mem = lf_isa::Memory::new(0x1000);
        for i in 0..64 {
            mem.write_u64(0x100 + i * 8, i + 1).unwrap();
        }
        let mut e1 = lf_isa::Emulator::new(&p, mem.clone());
        e1.run(100_000).unwrap();
        let mut e2 = lf_isa::Emulator::new(&q, mem);
        e2.run(100_000).unwrap();
        assert_eq!(e1.state_checksum(), e2.state_checksum());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::dom::Dominators;
    use crate::loops::find_loops;
    use lf_isa::{reg, AluOp, BranchCond, MemSize, Program, ProgramBuilder};

    fn analyze(p: &Program) -> (Cfg, Dominators, Liveness, Vec<Loop>) {
        let cfg = Cfg::build(p);
        let dom = Dominators::compute(&cfg);
        let live = Liveness::compute(p, &cfg);
        let loops = find_loops(&cfg, &dom);
        (cfg, dom, live, loops)
    }

    /// A loop with a `continue`-style second backedge: two tails, and the
    /// spine must only contain blocks dominating both.
    #[test]
    fn continue_style_loop_with_two_backedges() {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let work = b.label("work");
        b.li(reg::x(1), 0);
        b.li(reg::x(2), 512);
        b.bind(top);
        b.load(reg::x(3), reg::x(1), 0x1000, MemSize::B8); // 2
        b.alui(AluOp::Add, reg::x(1), reg::x(1), 8); // 3
                                                     // continue when the element is odd (backedge #1)...
        b.alui(AluOp::And, reg::x(4), reg::x(3), 1); // 4
        b.branch(BranchCond::Eq, reg::x(4), reg::ZERO, work); // 5
        b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top); // 6 (backedge)
        b.halt(); // 7
        b.bind(work);
        b.alui(AluOp::Mul, reg::x(3), reg::x(3), 5); // 8
        b.store(reg::x(3), reg::x(1), 0x1ff8, MemSize::B8); // 9
        b.branch(BranchCond::Lt, reg::x(1), reg::x(2), top); // 10 (backedge)
        b.halt(); // 11
        let p = b.build().unwrap();
        let (cfg, dom, live, loops) = analyze(&p);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].tails.len(), 2, "two backedges");
        // Planning must either find a legal boundary inside the shared
        // prefix or reject; it must not place hints in a tail-only block.
        if let Ok(pl) = plan_loop(&p, &cfg, &dom, &live, &loops, &loops[0], None) {
            let d_block = cfg.block_of(pl.detach_at);
            let r_block = cfg.block_of(pl.reattach_at);
            for &t in &loops[0].tails {
                assert!(dom.dominates(d_block, t), "detach block must dominate every tail");
                assert!(dom.dominates(r_block, t), "reattach block must dominate every tail");
            }
        }
    }

    /// Calls clobber the caller-saved set, so a body containing a call
    /// can't produce values consumed by the continuation through those
    /// registers; the placement must still be legal.
    #[test]
    fn call_in_loop_constrains_placement() {
        let mut b = ProgramBuilder::new();
        let top = b.label("top");
        let func = b.label("func");
        let start = b.label("start");
        b.jump(start);
        b.bind(func);
        b.alui(AluOp::Mul, reg::x(10), reg::x(10), 3);
        b.jump_reg(reg::RA);
        b.bind(start);
        b.li(reg::x(20), 0);
        b.li(reg::x(21), 256);
        b.bind(top);
        b.load(reg::x(10), reg::x(20), 0x1000, MemSize::B8);
        b.call(func, reg::RA);
        b.store(reg::x(10), reg::x(20), 0x1000, MemSize::B8);
        b.alui(AluOp::Add, reg::x(20), reg::x(20), 8);
        b.branch(BranchCond::Lt, reg::x(20), reg::x(21), top);
        b.halt();
        let p = b.build().unwrap();
        let (cfg, dom, live, loops) = analyze(&p);
        let l = loops
            .iter()
            .find(|l| {
                !l.blocks.is_empty() && {
                    let h = cfg.blocks()[l.header].start;
                    h > 3 // the counted loop, not anything in the callee
                }
            })
            .unwrap();
        if let Ok(pl) = plan_loop(&p, &cfg, &dom, &live, &loops, l, None) {
            // The induction register x20 must stay outside the body.
            let body: Vec<usize> = (pl.detach_at..pl.reattach_at).collect();
            for pc in body {
                if let Some(d) = p.insts()[pc].def() {
                    assert_ne!(d.index(), 20, "IV def leaked into the body at pc {pc}");
                }
            }
        }
    }

    /// Selecting and annotating two independent loops in one program must
    /// produce distinct region ids.
    #[test]
    fn two_loops_get_distinct_regions() {
        let mut b = ProgramBuilder::new();
        let t1 = b.label("t1");
        let t2 = b.label("t2");
        b.li(reg::x(1), 0);
        b.li(reg::x(2), 400);
        b.bind(t1);
        b.load(reg::x(3), reg::x(1), 0x1000, MemSize::B8);
        b.alui(AluOp::Mul, reg::x(3), reg::x(3), 3);
        b.store(reg::x(3), reg::x(1), 0x1000, MemSize::B8);
        b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
        b.branch(BranchCond::Lt, reg::x(1), reg::x(2), t1);
        b.li(reg::x(1), 0);
        b.bind(t2);
        b.load(reg::x(3), reg::x(1), 0x1000, MemSize::B8);
        b.alui(AluOp::Add, reg::x(3), reg::x(3), 9);
        b.store(reg::x(3), reg::x(1), 0x2000, MemSize::B8);
        b.alui(AluOp::Add, reg::x(1), reg::x(1), 8);
        b.branch(BranchCond::Lt, reg::x(1), reg::x(2), t2);
        b.halt();
        let p = b.build().unwrap();
        let mut emu = lf_isa::Emulator::new(&p, lf_isa::Memory::new(0x4000));
        emu.run(10_000_000).unwrap();
        let ann = crate::select::annotate(
            &p,
            emu.profile(),
            &crate::select::SelectOptions { min_coverage: 0.0, ..Default::default() },
        );
        let regions = ann.program.regions();
        assert_eq!(regions.len(), 2, "both loops annotated with distinct regions");
    }
}
